//! Superblock → I-ISA fragment emission (paper §3.3).
//!
//! The translator never re-schedules code: it walks the decomposed node
//! list in program order, re-mapping intra-strand communication onto
//! accumulators per the [`crate::plan`] and emitting one or two I-ISA
//! instructions per node, plus:
//!
//! * `copy-from-GPR` strand starters (two-global-operand splits and
//!   terminated-strand resumptions);
//! * in the **basic** form, `copy-to-GPR` instructions after every
//!   producer whose value must be architecturally visible (live-out,
//!   communication, exit-crossing and trap-window values — the paper's
//!   Table 2 copy overhead);
//! * fragment chaining code per the [`ChainPolicy`]: patchable
//!   `call-translator` exits, the 3-instruction software jump prediction
//!   sequence, dual-address-RAS pushes and the return/dispatch pair.

use crate::classify::{analyze, CategoryCounts, ValueId};
use crate::fragment::{IMeta, RecoveryEntry, DISPATCH_IADDR};
use crate::strands::{plan, Role, TranslationPlan};
use crate::superblock::{decompose_with, CollectedFlow, Node, NodeOp, SbEnd, Superblock};
use alpha_isa::{JumpKind, MemOp, OperateOp, PalFunc, Reg};
use ildp_isa::{ASrc, Acc, CondKind, IInst, ITarget, IsaForm, MemWidth};
use std::collections::HashMap;

/// Fragment-chaining policy (paper §3.2 and §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainPolicy {
    /// `no_pred`: every indirect jump branches to the shared dispatch
    /// code.
    NoPred,
    /// `sw_pred.no_ras`: translation-time software target prediction (the
    /// 3-instruction compare-and-branch) for all indirect jumps, returns
    /// included.
    SwPred,
    /// `sw_pred.ras`: software prediction for jumps/calls plus the
    /// dual-address hardware RAS for returns — the paper's baseline.
    SwPredDualRas,
}

impl ChainPolicy {
    /// Whether returns use the dual-address RAS.
    pub fn uses_dual_ras(self) -> bool {
        matches!(self, ChainPolicy::SwPredDualRas)
    }

    /// Whether indirect jumps use software target prediction.
    pub fn uses_sw_pred(self) -> bool {
        !matches!(self, ChainPolicy::NoPred)
    }

    /// The label used in the paper's Figure 4.
    pub fn label(self) -> &'static str {
        match self {
            ChainPolicy::NoPred => "no_pred",
            ChainPolicy::SwPred => "sw_pred.no_ras",
            ChainPolicy::SwPredDualRas => "sw_pred.ras",
        }
    }
}

/// Translator configuration.
#[derive(Clone, Copy, Debug)]
pub struct Translator {
    /// Target ISA form.
    pub form: IsaForm,
    /// Chaining policy.
    pub chain: ChainPolicy,
    /// Logical accumulators available (paper: 4 default, 8 evaluated).
    pub acc_count: usize,
    /// The fused-memory extension (paper §4.5): keep displaced memory
    /// operations as single I-ISA instructions instead of decomposing
    /// them into address-compute + access pairs. Off by default (the
    /// paper's evaluated ISA decomposes).
    pub fuse_memory: bool,
}

impl Default for Translator {
    fn default() -> Translator {
        Translator {
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        }
    }
}

/// Per-superblock translation statistics (aggregated into Table 2 and
/// Figure 7 by the VM).
#[derive(Clone, Debug, Default)]
pub struct TranslateStats {
    /// Copy instructions emitted (`copy-to-GPR` + `copy-from-GPR`).
    pub copies: u32,
    /// Chaining-overhead instructions emitted.
    pub chain_insts: u32,
    /// Strands formed.
    pub strands: u32,
    /// Strands prematurely terminated.
    pub terminations: u32,
    /// Static category counts of produced values.
    pub categories: CategoryCounts,
    /// Static category counts under **oracle boundaries** (no saves at
    /// side exits — the paper's [28] comparison point; statistics only).
    pub oracle_categories: CategoryCounts,
}

/// The output of translating one superblock, ready for
/// [`crate::TranslationCache::install`].
#[derive(Clone, Debug)]
pub struct TranslatedCode {
    /// Entry V-address.
    pub vstart: u64,
    /// Emitted instructions.
    pub insts: Vec<IInst>,
    /// Parallel metadata.
    pub meta: Vec<IMeta>,
    /// Precise-trap recovery tables (basic form).
    pub recovery: HashMap<u32, Vec<RecoveryEntry>>,
    /// Source superblock length in V-ISA instructions.
    pub src_inst_count: u32,
    /// Emission statistics.
    pub stats: TranslateStats,
    /// The analysis artifacts behind this emission (consumed by
    /// translation validators).
    pub trace: TranslationTrace,
}

/// Everything the translator knew when it emitted a fragment: the
/// decomposed node list, its dataflow analysis, the strand/accumulator
/// plan, and the map from each emitted instruction back to the node it
/// implements. Static-analysis passes (the `ildp-verifier` crate) check
/// the emitted code against this record instead of re-deriving it.
#[derive(Clone, Debug)]
pub struct TranslationTrace {
    /// Decomposed dataflow nodes of the source superblock.
    pub nodes: Vec<Node>,
    /// Dataflow analysis over `nodes`.
    pub df: crate::classify::Dataflow,
    /// Strand formation and accumulator assignment over `nodes`.
    pub plan: TranslationPlan,
    /// Per emitted instruction: the node it implements. `None` for the
    /// leading `SetVpcBase` and the block-ending continuation exit;
    /// chaining instructions emitted on behalf of a node (software jump
    /// prediction, RAS pushes) carry that node's index.
    pub inst_node: Vec<Option<u32>>,
}

/// Where each architected register's current value lives during emission
/// (recovery-table tracking, basic form).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CurDef {
    /// Still the live-in value (in the GPR file).
    LiveIn,
    /// Copied/written to the GPR file.
    Global,
    /// Resident only in an accumulator.
    AccResident(ValueId, Acc),
}

struct Emitter<'a> {
    tr: &'a Translator,
    sb: &'a Superblock,
    nodes: &'a [Node],
    df: &'a crate::classify::Dataflow,
    plan: &'a TranslationPlan,
    insts: Vec<IInst>,
    meta: Vec<IMeta>,
    recovery: HashMap<u32, Vec<RecoveryEntry>>,
    stats: TranslateStats,
    /// V-ISA instructions credited so far (for vcount attribution).
    credited: u32,
    /// Basic-form recovery tracking.
    cur_def: [CurDef; 32],
    acc_holds: [Option<ValueId>; Acc::MAX_ACCUMULATORS],
    /// Per emitted instruction: the node being emitted when it was pushed.
    inst_node: Vec<Option<u32>>,
    /// The node currently being emitted.
    cur_node: Option<u32>,
}

impl Translator {
    /// Translates a collected superblock into installable I-ISA code.
    ///
    /// # Panics
    ///
    /// Panics on an empty superblock (the profiler never produces one).
    pub fn translate(&self, sb: &Superblock) -> TranslatedCode {
        assert!(!sb.is_empty(), "cannot translate an empty superblock");
        let nodes = decompose_with(sb, self.fuse_memory);
        let df = analyze(&nodes);
        let plan = plan(&nodes, &df, self.acc_count, self.form == IsaForm::Basic);
        let mut em = Emitter {
            tr: self,
            sb,
            nodes: &nodes,
            df: &df,
            plan: &plan,
            insts: Vec::with_capacity(nodes.len() * 2),
            meta: Vec::with_capacity(nodes.len() * 2),
            recovery: HashMap::new(),
            stats: TranslateStats {
                strands: plan.strand_count,
                terminations: plan.terminations,
                ..TranslateStats::default()
            },
            credited: 0,
            cur_def: [CurDef::LiveIn; 32],
            acc_holds: [None; Acc::MAX_ACCUMULATORS],
            inst_node: Vec::with_capacity(nodes.len() * 2),
            cur_node: None,
        };
        for v in &plan.final_category {
            em.stats.categories.bump(*v);
        }
        for v in &crate::classify::analyze_oracle(&nodes).values {
            em.stats.oracle_categories.bump(v.category);
        }
        em.run();
        let Emitter {
            insts,
            meta,
            recovery,
            stats,
            inst_node,
            ..
        } = em;
        TranslatedCode {
            vstart: sb.start,
            insts,
            meta,
            recovery,
            src_inst_count: sb.len() as u32,
            stats,
            trace: TranslationTrace {
                nodes,
                df,
                plan,
                inst_node,
            },
        }
    }
}

impl Emitter<'_> {
    fn run(&mut self) {
        // Every fragment begins with the V-PC base special instruction
        // (paper §2.2).
        self.push(
            IInst::SetVpcBase {
                vaddr: self.sb.start,
            },
            IMeta {
                vaddr: self.sb.start,
                vcount: 0,
                category: None,
                is_chain: false,
            },
        );
        for i in 0..self.nodes.len() {
            self.cur_node = Some(i as u32);
            self.emit_node(i);
        }
        self.cur_node = None;
        // Block-ending continuation for non-control endings.
        match self.sb.end {
            SbEnd::Cycle { next } | SbEnd::MaxSize { next } => {
                let vaddr = self.last_vaddr();
                // Trailing straightened-away direct branches have no later
                // retiring node to credit them; they retire unconditionally
                // on the way to this exit, so the continuation carries the
                // outstanding count.
                let stranded = (self.sb.len() as u32).saturating_sub(self.credited) as u16;
                self.stats.chain_insts += 1;
                self.push(
                    IInst::CallTranslator { vtarget: next },
                    IMeta {
                        vcount: stranded,
                        ..IMeta::chain(vaddr)
                    },
                );
            }
            _ => {}
        }
    }

    fn last_vaddr(&self) -> u64 {
        self.nodes.last().map(|n| n.vaddr).unwrap_or(self.sb.start)
    }

    fn push(&mut self, inst: IInst, meta: IMeta) {
        debug_assert!(
            inst.validate(self.tr.form).is_ok(),
            "emitted invalid {inst:?} for {:?}",
            self.tr.form
        );
        // Track accumulator contents for recovery tables.
        if inst.writes_acc() {
            if let Some(acc) = inst.acc() {
                self.acc_holds[acc.index()] = None;
            }
        }
        self.insts.push(inst);
        self.meta.push(meta);
        self.inst_node.push(self.cur_node);
    }

    fn push_chain(&mut self, inst: IInst, vaddr: u64) {
        self.stats.chain_insts += 1;
        self.push(inst, IMeta::chain(vaddr));
    }

    /// vcount credit for a retiring node: covers any straightened-away
    /// direct branches between the previous retirement and this one.
    fn credit(&mut self, node: &Node) -> u16 {
        let through = node.sb_index + 1;
        let c = through.saturating_sub(self.credited);
        self.credited = through;
        c as u16
    }

    fn role_src(&self, i: usize, slot: usize) -> ASrc {
        match self.plan.input_role[i][slot] {
            Some(Role::Acc) => ASrc::Acc,
            Some(Role::Gpr(r)) => ASrc::Gpr(r),
            Some(Role::Imm(v)) => ASrc::Imm(v),
            None => panic!("missing input role for node {i} slot {slot}"),
        }
    }

    fn node_acc(&self, i: usize) -> Acc {
        self.plan.node_acc[i].unwrap_or(Acc::new(0))
    }

    /// The modified-form destination specifier for a producing node.
    fn dst_for(&self, node: &Node, value: Option<ValueId>) -> Option<Reg> {
        if self.tr.form != IsaForm::Modified {
            return None;
        }
        value.and_then(|v| self.df.value(v).reg).or({
            // Producing node whose register write was discarded (R31):
            // no architected effect.
            let _ = node;
            None
        })
    }

    fn emit_pre_copy(&mut self, i: usize) {
        if let Some(reg) = self.plan.pre_copy[i] {
            let acc = self.node_acc(i);
            self.push(
                IInst::CopyFromGpr { acc, src: reg },
                IMeta {
                    vaddr: self.nodes[i].vaddr,
                    vcount: 0,
                    category: None,
                    is_chain: false,
                },
            );
            self.stats.copies += 1;
        }
    }

    /// Basic-form architected-state copy after a producing instruction.
    fn emit_post_copy(&mut self, i: usize, value: Option<ValueId>) {
        let Some(v) = value else { return };
        let info = self.df.value(v);
        let Some(reg) = info.reg else {
            self.track_def(v, None);
            return;
        };
        let cat = self.plan.final_category[v.0 as usize];
        if self.tr.form == IsaForm::Basic {
            if cat.is_global() {
                let acc = self.node_acc(i);
                self.push(
                    IInst::CopyToGpr { acc, dst: reg },
                    IMeta {
                        vaddr: self.nodes[i].vaddr,
                        vcount: 0,
                        category: None,
                        is_chain: false,
                    },
                );
                self.stats.copies += 1;
                self.cur_def[reg.number() as usize] = CurDef::Global;
            } else {
                let acc = self.node_acc(i);
                self.cur_def[reg.number() as usize] = CurDef::AccResident(v, acc);
                self.acc_holds[acc.index()] = Some(v);
            }
        } else {
            // Modified form: the destination specifier updated the file.
            self.cur_def[reg.number() as usize] = CurDef::Global;
        }
    }

    fn track_def(&mut self, v: ValueId, _reg: Option<Reg>) {
        // Temps: keep the accumulator association for completeness.
        if let Some(strand) = self.df.value(v).reg {
            let _ = strand;
        }
        let producer = self.df.value(v).producer as usize;
        if let Some(acc) = self.plan.node_acc[producer] {
            self.acc_holds[acc.index()] = Some(v);
        }
    }

    /// Records the trap-recovery table for a PEI that was just emitted at
    /// instruction index `idx`.
    fn record_recovery(&mut self, idx: u32) {
        if self.tr.form != IsaForm::Basic {
            return;
        }
        let mut entries = Vec::new();
        for rn in 0..31u8 {
            if let CurDef::AccResident(v, acc) = self.cur_def[rn as usize] {
                if self.acc_holds[acc.index()] == Some(v) {
                    entries.push(RecoveryEntry {
                        reg: Reg::new(rn),
                        acc,
                    });
                } else {
                    // The PEI-window rule must have upgraded such values.
                    debug_assert!(
                        false,
                        "architected r{rn} lost from accumulator before a PEI"
                    );
                }
            }
        }
        if !entries.is_empty() {
            self.recovery.insert(idx, entries);
        }
    }

    fn mem_width(op: MemOp) -> MemWidth {
        match op {
            MemOp::Ldbu | MemOp::Stb => MemWidth::U8,
            MemOp::Ldwu | MemOp::Stw => MemWidth::U16,
            MemOp::Ldl | MemOp::Stl => MemWidth::I32,
            MemOp::Ldq | MemOp::Stq => MemWidth::U64,
            MemOp::Lda | MemOp::Ldah => unreachable!("address arithmetic is not memory"),
        }
    }

    fn emit_node(&mut self, i: usize) {
        self.emit_pre_copy(i);
        let node = &self.nodes[i];
        let acc = self.node_acc(i);
        let value = self.df.produced[i];
        let vcount = if node.retires { self.credit(node) } else { 0 };
        let category = value.map(|v| self.plan.final_category[v.0 as usize]);
        let meta = IMeta {
            vaddr: node.vaddr,
            vcount,
            category,
            is_chain: false,
        };

        match node.op {
            NodeOp::Alu(op) => {
                let inst = IInst::Op {
                    op,
                    acc,
                    lhs: self.role_src(i, 0),
                    rhs: self.role_src(i, 1),
                    dst: self.dst_for(node, value),
                };
                self.push(inst, meta);
                self.emit_post_copy(i, value);
            }
            NodeOp::AddImm => {
                let inst = IInst::Op {
                    op: OperateOp::Addq,
                    acc,
                    lhs: self.role_src(i, 0),
                    rhs: ASrc::Imm(node.imm),
                    dst: self.dst_for(node, value),
                };
                self.push(inst, meta);
                self.emit_post_copy(i, value);
            }
            NodeOp::AddHigh => {
                let inst = IInst::AddHigh {
                    acc,
                    src: self.role_src(i, 0),
                    imm: node.imm,
                    dst: self.dst_for(node, value),
                };
                self.push(inst, meta);
                self.emit_post_copy(i, value);
            }
            NodeOp::Load(op) => {
                let inst = IInst::Load {
                    width: Self::mem_width(op),
                    acc,
                    addr: self.role_src(i, 0),
                    disp: node.imm,
                    dst: self.dst_for(node, value),
                };
                let idx = self.insts.len() as u32;
                self.record_recovery(idx);
                self.push(inst, meta);
                self.emit_post_copy(i, value);
            }
            NodeOp::Store(op) => {
                let inst = IInst::Store {
                    width: Self::mem_width(op),
                    acc,
                    addr: self.role_src(i, 0),
                    disp: node.imm,
                    value: self.role_src(i, 1),
                };
                let idx = self.insts.len() as u32;
                self.record_recovery(idx);
                self.push(inst, meta);
            }
            NodeOp::CmovSelect(sel) => {
                let old = self
                    .df
                    .value(value.expect("select produces a value"))
                    .reg
                    .expect("select destination is architected");
                let inst = IInst::CmovSelect {
                    lbs: sel == OperateOp::Cmovlbs,
                    acc,
                    value: self.role_src(i, 1),
                    old,
                    dst: self.dst_for(node, value),
                };
                self.push(inst, meta);
                self.emit_post_copy(i, value);
            }
            NodeOp::CondBranch(bop) => {
                let src = self.role_src(i, 0);
                let is_ending = i == self.nodes.len() - 1
                    && matches!(self.sb.end, SbEnd::BackwardTakenBranch { .. });
                match (node_flow(self.sb, node), is_ending) {
                    (CollectedFlow::CondNotTaken { taken_target }, _) => {
                        self.push(
                            IInst::CallTranslatorIfCond {
                                cond: CondKind::from_branch_op(bop),
                                acc,
                                src,
                                vtarget: taken_target,
                            },
                            meta,
                        );
                    }
                    (
                        CollectedFlow::CondTaken {
                            taken_target,
                            fallthrough,
                        },
                        false,
                    ) => {
                        // Reversed so the followed path falls through.
                        self.push(
                            IInst::CallTranslatorIfCond {
                                cond: CondKind::from_branch_op(bop.inverse()),
                                acc,
                                src,
                                vtarget: fallthrough,
                            },
                            meta,
                        );
                        let _ = taken_target;
                    }
                    (
                        CollectedFlow::CondTaken {
                            taken_target,
                            fallthrough,
                        },
                        true,
                    ) => {
                        // Block-ending backward taken branch (Fig. 2):
                        // conditional exit to the loop head, unconditional
                        // exit to the fall-through.
                        self.push(
                            IInst::CallTranslatorIfCond {
                                cond: CondKind::from_branch_op(bop),
                                acc,
                                src,
                                vtarget: taken_target,
                            },
                            meta,
                        );
                        self.push_chain(
                            IInst::CallTranslator {
                                vtarget: fallthrough,
                            },
                            node.vaddr,
                        );
                    }
                    (flow, _) => panic!("conditional branch with flow {flow:?}"),
                }
            }
            NodeOp::CallSave => {
                let dst = node.out.expect("call-save links a register");
                let vret = node.vaddr + 4;
                self.push(IInst::SaveVReturn { dst, vaddr: vret }, meta);
                self.cur_def[dst.number() as usize] = CurDef::Global;
                if self.tr.chain.uses_dual_ras() {
                    self.push_chain(
                        IInst::PushDualRas {
                            vret,
                            iret: ITarget::Addr(DISPATCH_IADDR),
                        },
                        node.vaddr,
                    );
                }
            }
            NodeOp::IndirectJump(kind) => {
                self.emit_indirect(i, kind, meta);
            }
            NodeOp::Pal(func) => match func {
                PalFunc::Halt => self.push(IInst::Halt, meta),
                PalFunc::GenTrap => {
                    let idx = self.insts.len() as u32;
                    self.record_recovery(idx);
                    self.push(IInst::GenTrap, meta);
                }
                PalFunc::PutChar => {
                    let inst = IInst::PutChar {
                        acc,
                        src: self.role_src(i, 0),
                    };
                    self.push(inst, meta);
                }
                PalFunc::Other(_) => {
                    // Architecturally a NOP: credit retirement on a free
                    // copy-less ALU no-op.
                    self.push(
                        IInst::Op {
                            op: OperateOp::Bis,
                            acc,
                            lhs: ASrc::Imm(0),
                            rhs: ASrc::Imm(0),
                            dst: None,
                        },
                        meta,
                    );
                }
            },
        }
    }

    fn emit_indirect(&mut self, i: usize, kind: JumpKind, meta: IMeta) {
        let node = &self.nodes[i];
        let src = self.role_src(i, 0);
        // Planning forces local jump targets global, so `src` is a GPR —
        // or, degenerately, an immediate when the guest jumps through R31
        // (the chaining code handles either operand kind).
        debug_assert!(
            !matches!(src, ASrc::Acc),
            "indirect-jump operands are forced global by planning"
        );
        let observed = match node_flow(self.sb, node) {
            CollectedFlow::Indirect { target, .. } => target,
            flow => panic!("indirect jump with flow {flow:?}"),
        };
        let acc = Acc::new(0); // block ends; any accumulator is free for chaining
        match (kind, self.tr.chain) {
            (JumpKind::Ret, ChainPolicy::SwPredDualRas) => {
                // The return itself (dual-RAS predicted, non-atomic
                // semantics) followed by the dispatch fallback.
                let mut m = meta;
                m.vcount = meta.vcount;
                self.push(
                    IInst::IndirectJump {
                        kind,
                        acc,
                        addr: src,
                    },
                    m,
                );
                self.push_chain(IInst::Dispatch { acc, src }, node.vaddr);
            }
            (_, ChainPolicy::NoPred) => {
                // Straight to the shared dispatch code.
                self.push(IInst::Dispatch { acc, src }, meta);
            }
            _ => {
                // Software target prediction: the paper's 3-instruction
                // compare-and-branch, then dispatch.
                let mut m0 = IMeta::chain(node.vaddr);
                m0.vcount = meta.vcount; // the jump retires here
                self.stats.chain_insts += 1;
                self.push(
                    IInst::LoadEmbeddedTarget {
                        acc,
                        vaddr: observed,
                    },
                    m0,
                );
                self.push_chain(
                    IInst::Op {
                        op: OperateOp::Cmpeq,
                        acc,
                        lhs: ASrc::Acc,
                        rhs: src,
                        dst: None,
                    },
                    node.vaddr,
                );
                self.push_chain(
                    IInst::CallTranslatorIfCond {
                        cond: CondKind::Ne, // acc==1 means "target matches"
                        acc,
                        src: ASrc::Acc,
                        vtarget: observed,
                    },
                    node.vaddr,
                );
                self.push_chain(IInst::Dispatch { acc, src }, node.vaddr);
            }
        }
    }
}

fn node_flow(sb: &Superblock, node: &Node) -> CollectedFlow {
    sb.insts[node.sb_index as usize].flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superblock::SbInst;
    use alpha_isa::{BranchOp, Inst, Operand};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn fig2_superblock() -> Superblock {
        // The paper's Figure 2 example, as a one-iteration superblock
        // ending at the backward taken branch.
        let base = 0x1_0000u64;
        let mk = |i: u64, inst: Inst| SbInst {
            vaddr: base + i * 4,
            inst,
            flow: CollectedFlow::Sequential,
        };
        let mut insts = vec![
            mk(
                0,
                Inst::Mem {
                    op: MemOp::Ldbu,
                    ra: r(3),
                    rb: r(16),
                    disp: 0,
                },
            ),
            mk(
                1,
                Inst::Operate {
                    op: OperateOp::Subl,
                    ra: r(17),
                    rb: Operand::Lit(1),
                    rc: r(17),
                },
            ),
            mk(
                2,
                Inst::Mem {
                    op: MemOp::Lda,
                    ra: r(16),
                    rb: r(16),
                    disp: 1,
                },
            ),
            mk(
                3,
                Inst::Operate {
                    op: OperateOp::Xor,
                    ra: r(1),
                    rb: Operand::Reg(r(3)),
                    rc: r(3),
                },
            ),
            mk(
                4,
                Inst::Operate {
                    op: OperateOp::Srl,
                    ra: r(1),
                    rb: Operand::Lit(8),
                    rc: r(1),
                },
            ),
            mk(
                5,
                Inst::Operate {
                    op: OperateOp::And,
                    ra: r(3),
                    rb: Operand::Lit(0xff),
                    rc: r(3),
                },
            ),
            mk(
                6,
                Inst::Operate {
                    op: OperateOp::S8addq,
                    ra: r(3),
                    rb: Operand::Reg(r(0)),
                    rc: r(3),
                },
            ),
            mk(
                7,
                Inst::Mem {
                    op: MemOp::Ldq,
                    ra: r(3),
                    rb: r(3),
                    disp: 0,
                },
            ),
            mk(
                8,
                Inst::Operate {
                    op: OperateOp::Xor,
                    ra: r(3),
                    rb: Operand::Reg(r(1)),
                    rc: r(1),
                },
            ),
        ];
        insts.push(SbInst {
            vaddr: base + 9 * 4,
            inst: Inst::Branch {
                op: BranchOp::Bne,
                ra: r(17),
                disp: -10,
            },
            flow: CollectedFlow::CondTaken {
                taken_target: base,
                fallthrough: base + 10 * 4,
            },
        });
        Superblock {
            start: base,
            insts,
            end: SbEnd::BackwardTakenBranch {
                target: base,
                fallthrough: base + 10 * 4,
            },
        }
    }

    #[test]
    fn fig2_basic_translation_matches_paper_shape() {
        let tr = Translator {
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        };
        let out = tr.translate(&fig2_superblock());
        // Paper Fig. 2(c): 9 source instructions become 13 basic-ISA
        // computational instructions (4 copies), plus the two-way exit
        // and the leading SetVpcBase.
        let copies = out.insts.iter().filter(|i| i.is_copy()).count();
        assert_eq!(
            copies,
            4,
            "Fig 2(c) has four copy-to-GPR instructions:\n{}",
            out.insts
                .iter()
                .map(|i| format!("  {i}\n"))
                .collect::<String>()
        );
        assert!(matches!(out.insts[0], IInst::SetVpcBase { .. }));
        // The two-way ending: conditional + unconditional exits.
        let n = out.insts.len();
        assert!(matches!(
            out.insts[n - 2],
            IInst::CallTranslatorIfCond {
                cond: CondKind::Ne,
                ..
            }
        ));
        assert!(matches!(out.insts[n - 1], IInst::CallTranslator { .. }));
        // All instructions validate for the basic form.
        for inst in &out.insts {
            inst.validate(IsaForm::Basic).unwrap();
        }
        assert_eq!(out.src_inst_count, 10);
    }

    #[test]
    fn fig2_modified_translation_has_no_copies() {
        let tr = Translator {
            form: IsaForm::Modified,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        };
        let out = tr.translate(&fig2_superblock());
        assert_eq!(
            out.insts.iter().filter(|i| i.is_copy()).count(),
            0,
            "modified form needs no state copies for this block"
        );
        // Every producing instruction names its destination GPR.
        for inst in &out.insts {
            inst.validate(IsaForm::Modified).unwrap();
            if matches!(inst, IInst::Op { .. } | IInst::Load { .. }) {
                assert!(
                    inst.gpr_write().is_some(),
                    "modified-form producer without destination: {inst}"
                );
            }
        }
        // Modified form executes fewer instructions than basic.
        let tr_b = Translator {
            form: IsaForm::Basic,
            ..tr
        };
        let out_b = tr_b.translate(&fig2_superblock());
        assert!(out.insts.len() < out_b.insts.len());
    }

    #[test]
    fn vcount_credits_cover_all_source_instructions() {
        let out = Translator::default().translate(&fig2_superblock());
        let total: u32 = out.meta.iter().map(|m| m.vcount as u32).sum();
        assert_eq!(total, out.src_inst_count);
    }

    #[test]
    fn basic_form_recovery_tables_cover_acc_resident_state() {
        let tr = Translator {
            form: IsaForm::Basic,
            chain: ChainPolicy::SwPredDualRas,
            acc_count: 4,
            fuse_memory: false,
        };
        let out = tr.translate(&fig2_superblock());
        // The ldq (A0 <- mem[A0]) has r3's architected value (the s8addq
        // result) still in A0: the recovery table must say so.
        let ldq_idx = out
            .insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    IInst::Load {
                        width: MemWidth::U64,
                        ..
                    }
                )
            })
            .expect("fragment contains the ldq");
        let entries = out
            .recovery
            .get(&(ldq_idx as u32))
            .expect("ldq has a recovery table");
        assert!(
            entries.iter().any(|e| e.reg == r(3)),
            "r3 must be recoverable from an accumulator at the ldq: {entries:?}"
        );
    }

    #[test]
    fn return_chaining_emits_ras_then_dispatch() {
        let sb = Superblock {
            start: 0x2000,
            insts: vec![SbInst {
                vaddr: 0x2000,
                inst: Inst::Jump {
                    kind: JumpKind::Ret,
                    ra: Reg::ZERO,
                    rb: Reg::RA,
                    hint: 0,
                },
                flow: CollectedFlow::Indirect {
                    kind: JumpKind::Ret,
                    target: 0x9000,
                },
            }],
            end: SbEnd::IndirectJump,
        };
        let out = Translator::default().translate(&sb);
        assert!(matches!(
            out.insts[1],
            IInst::IndirectJump {
                kind: JumpKind::Ret,
                ..
            }
        ));
        assert!(matches!(out.insts[2], IInst::Dispatch { .. }));

        // Without the dual RAS, returns get the software-prediction
        // sequence instead.
        let tr = Translator {
            chain: ChainPolicy::SwPred,
            ..Translator::default()
        };
        let out = tr.translate(&sb);
        assert!(matches!(
            out.insts[1],
            IInst::LoadEmbeddedTarget { vaddr: 0x9000, .. }
        ));
        assert!(matches!(
            out.insts[2],
            IInst::Op {
                op: OperateOp::Cmpeq,
                ..
            }
        ));
        assert!(matches!(
            out.insts[3],
            IInst::CallTranslatorIfCond {
                vtarget: 0x9000,
                ..
            }
        ));
        assert!(matches!(out.insts[4], IInst::Dispatch { .. }));

        // no_pred: dispatch only.
        let tr = Translator {
            chain: ChainPolicy::NoPred,
            ..Translator::default()
        };
        let out = tr.translate(&sb);
        assert!(matches!(out.insts[1], IInst::Dispatch { .. }));
        assert_eq!(out.insts.len(), 2);
    }

    #[test]
    fn call_emits_save_and_ras_push() {
        let sb = Superblock {
            start: 0x3000,
            insts: vec![
                SbInst {
                    vaddr: 0x3000,
                    inst: Inst::Branch {
                        op: BranchOp::Bsr,
                        ra: Reg::RA,
                        disp: 100,
                    },
                    flow: CollectedFlow::Direct {
                        target: 0x3194,
                        links: true,
                    },
                },
                SbInst {
                    vaddr: 0x3194,
                    inst: Inst::CallPal {
                        func: PalFunc::Halt,
                    },
                    flow: CollectedFlow::Sequential,
                },
            ],
            end: SbEnd::Halt,
        };
        let out = Translator::default().translate(&sb);
        assert!(matches!(
            out.insts[1],
            IInst::SaveVReturn {
                dst: Reg::RA,
                vaddr: 0x3004
            }
        ));
        assert!(matches!(
            out.insts[2],
            IInst::PushDualRas { vret: 0x3004, .. }
        ));
        assert!(matches!(out.insts[3], IInst::Halt));
    }
}
