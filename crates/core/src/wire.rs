//! Hand-rolled binary wire helpers shared by the snapshot, replay-log
//! and `.repro`-bundle formats.
//!
//! The build environment is offline (no serde), so every persisted
//! artifact uses the same tiny scheme: little-endian fixed-width
//! integers, `u32`-length-prefixed byte strings, and a common envelope —
//! `magic`, `version`, payload, trailing FNV-1a checksum over everything
//! before the trailer. Readers are bounds-checked and fail with
//! [`SnapshotError`] instead of panicking, so a corrupted artifact
//! reports *how* it is corrupt.

use crate::error::SnapshotError;

/// Appends a byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Appends an optional `u64` as a presence byte plus the value.
pub fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

/// FNV-1a over `bytes` — the checksum every envelope trailer carries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Wraps a payload in the common envelope: `magic`, `version`, payload,
/// FNV-1a trailer over all preceding bytes.
pub fn seal(magic: u32, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    put_u32(&mut out, magic);
    put_u32(&mut out, version);
    out.extend_from_slice(payload);
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Opens an envelope written by [`seal`]: checks the magic, verifies the
/// checksum trailer, and returns `(version, payload)`. Version
/// acceptance is the caller's decision — formats may read older
/// versions.
pub fn open(magic: u32, bytes: &[u8]) -> Result<(u32, &[u8]), SnapshotError> {
    if bytes.len() < 16 {
        return Err(SnapshotError::Truncated);
    }
    let actual_magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if actual_magic != magic {
        return Err(SnapshotError::BadMagic {
            expected: magic,
            actual: actual_magic,
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let trailer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let checksum = fnv1a(body);
    if checksum != trailer {
        return Err(SnapshotError::ChecksumMismatch {
            expected: trailer,
            actual: checksum,
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    Ok((version, &body[8..]))
}

/// A bounds-checked read cursor over an opened payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Reads an optional `u64` written by [`put_opt_u64`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.take_u64()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 42);
        put_bytes(&mut payload, b"hello");
        put_opt_u64(&mut payload, None);
        put_opt_u64(&mut payload, Some(7));
        let sealed = seal(0x1234_5678, 3, &payload);
        let (version, body) = open(0x1234_5678, &sealed).unwrap();
        assert_eq!(version, 3);
        let mut c = Cursor::new(body);
        assert_eq!(c.take_u64().unwrap(), 42);
        assert_eq!(c.take_bytes().unwrap(), b"hello");
        assert_eq!(c.take_opt_u64().unwrap(), None);
        assert_eq!(c.take_opt_u64().unwrap(), Some(7));
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn envelope_detects_corruption() {
        let sealed = seal(0xABCD, 1, b"payload");
        assert!(matches!(
            open(0xDCBA, &sealed),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut flipped = sealed.clone();
        flipped[9] ^= 0x40;
        assert!(matches!(
            open(0xABCD, &flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(open(0xABCD, &sealed[..10]), Err(SnapshotError::Truncated));
    }

    #[test]
    fn cursor_rejects_overread() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.take_u32(), Err(SnapshotError::Truncated));
    }
}
