//! Deterministic record–replay of the nondeterministic envelope.
//!
//! The VM itself is deterministic: given the same program and the same
//! sequence of external stimuli, every run retires the same instruction
//! stream through the same fragment boundaries. What *varies* between
//! runs is the envelope — the budgets passed to [`Vm::run`](crate::Vm::run)
//! (each pause is an observable boundary where an embedder may mutate the
//! cache), external [`notify_code_write`](crate::Vm::notify_code_write) /
//! flush calls, and the fault-injection schedule of the chaos harness. A
//! [`ReplayLog`] records that envelope so any failing run replays exactly
//! from its seed plus log, with no random generator in the loop.
//!
//! Events are **count-anchored**: a [`ReplayEvent::Run`] records the
//! *requested* budget, and `Vm::run` deterministically stops at the first
//! fragment boundary at or past it, so replaying the same budget sequence
//! reproduces the same boundary sequence. Cache-directed events address
//! fragments by entry V-address (stable across retranslation), not by
//! cache slot id.
//!
//! A [`Sabotage`] is different in kind: it is a *standing* rule modelling
//! a translator bug ("whenever the fragment at `vstart` is installed,
//! corrupt this immediate"), so a miscompile stays reproducible even
//! after a snapshot restore rebuilds the translation cache from cold.

use crate::error::SnapshotError;
use crate::wire::{self, Cursor};

/// Magic number of the replay-log wire format (`"ILPR"`).
pub const REPLAY_MAGIC: u32 = 0x5250_4C49;

/// Current replay-log format version. Version 2 added the background
/// translation events ([`ReplayEvent::BgInstall`], [`ReplayEvent::BgDrop`],
/// [`ReplayEvent::StagedDrop`]); version-1 logs remain readable.
pub const REPLAY_VERSION: u32 = 2;

/// One externally-applied stimulus, in application order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayEvent {
    /// `Vm::run` was invoked with this budget; the VM paused at the first
    /// fragment boundary at or past it and the events that follow (up to
    /// the next `Run`) were applied at that pause.
    Run {
        /// The requested V-instruction budget.
        budget: u64,
    },
    /// A direct link out of the fragment entered at `fragment_vstart` was
    /// severed (`links[slot] = None`).
    LinkClear {
        /// Entry V-address of the corrupted fragment.
        fragment_vstart: u64,
        /// Instruction slot of the link.
        slot: u32,
    },
    /// A direct link was misdirected to a fragment id that never existed.
    LinkPoison {
        /// Entry V-address of the corrupted fragment.
        fragment_vstart: u64,
        /// Instruction slot of the link.
        slot: u32,
    },
    /// A resolved branch/push target was retargeted off any fragment
    /// entry.
    TargetPoison {
        /// Entry V-address of the corrupted fragment.
        fragment_vstart: u64,
        /// Instruction slot of the transfer.
        slot: u32,
    },
    /// The fragment's entry `SetVpcBase` was made to name the wrong
    /// V-address.
    VpcCorrupt {
        /// Entry V-address of the corrupted fragment.
        fragment_vstart: u64,
    },
    /// The cache epoch was bumped without dropping fragments (stale
    /// dual-RAS links fall back to dispatch).
    EpochFlip,
    /// An external write into guest memory was reported via
    /// `notify_code_write`.
    CodeWrite {
        /// Start of the written range.
        addr: u64,
        /// Length of the written range.
        len: u64,
    },
    /// The C01–C07 installed-fragment audit ran and healed every flagged
    /// fragment by precise invalidation.
    AuditHeal,
    /// A background translation finished and its fragment was installed
    /// at the fragment-boundary safe point where `at_v_insts` retired
    /// instructions had been counted. A replaying VM in scheduled mode
    /// translates synchronously but defers the install to this anchor.
    BgInstall {
        /// Entry V-address of the installed fragment.
        fragment_vstart: u64,
        /// Retired-instruction count at the installing safe point.
        at_v_insts: u64,
    },
    /// A background translation finished but its result was discarded at
    /// the safe point (the region had been demoted, invalidated by SMC,
    /// rejected by the verifier, or superseded).
    BgDrop {
        /// Entry V-address of the dropped fragment.
        fragment_vstart: u64,
        /// Retired-instruction count at the discarding safe point.
        at_v_insts: u64,
    },
    /// A staged (completed-but-not-yet-installed) translation was dropped
    /// by external fault injection before reaching its safe point.
    StagedDrop {
        /// Entry V-address of the dropped staged fragment.
        fragment_vstart: u64,
    },
}

/// A standing translator-miscompile rule: whenever a fragment with entry
/// `vstart` is (re)installed, XOR `imm_xor` into the first immediate
/// operand at or after instruction `slot` (wrapping). Modelling the bug
/// as a rule rather than a one-shot edit keeps it active across snapshot
/// restores and cache flushes, which rebuild fragments from cold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sabotage {
    /// Entry V-address of the fragment to corrupt.
    pub vstart: u64,
    /// Preferred instruction slot (the applier scans forward from here).
    pub slot: u32,
    /// Bits to XOR into the immediate.
    pub imm_xor: u16,
}

/// A recorded nondeterministic envelope: seed provenance, standing
/// sabotage rules, and the event schedule.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ReplayLog {
    /// Seed of the generator that produced the schedule (provenance only;
    /// replay never consults it).
    pub seed: u64,
    /// Standing miscompile rules, re-applied on every matching install.
    pub sabotage: Vec<Sabotage>,
    /// The stimulus schedule, in application order.
    pub events: Vec<ReplayEvent>,
}

impl ReplayLog {
    /// Serializes into the enveloped wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_u64(&mut p, self.seed);
        wire::put_u32(&mut p, self.sabotage.len() as u32);
        for s in &self.sabotage {
            wire::put_u64(&mut p, s.vstart);
            wire::put_u32(&mut p, s.slot);
            wire::put_u32(&mut p, s.imm_xor as u32);
        }
        wire::put_u32(&mut p, self.events.len() as u32);
        for ev in &self.events {
            put_event(&mut p, ev);
        }
        wire::seal(REPLAY_MAGIC, REPLAY_VERSION, &p)
    }

    /// Deserializes an artifact written by [`to_bytes`](ReplayLog::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplayLog, SnapshotError> {
        let (version, payload) = wire::open(REPLAY_MAGIC, bytes)?;
        if !(1..=REPLAY_VERSION).contains(&version) {
            return Err(SnapshotError::BadVersion { version });
        }
        let mut c = Cursor::new(payload);
        let mut log = ReplayLog {
            seed: c.take_u64()?,
            ..ReplayLog::default()
        };
        let n = c.take_u32()? as usize;
        for _ in 0..n {
            let vstart = c.take_u64()?;
            let slot = c.take_u32()?;
            let imm_xor = c.take_u32()? as u16;
            log.sabotage.push(Sabotage {
                vstart,
                slot,
                imm_xor,
            });
        }
        let n = c.take_u32()? as usize;
        for _ in 0..n {
            log.events.push(take_event(&mut c)?);
        }
        Ok(log)
    }

    /// Drops events already reflected in a snapshot taken at `v_insts`
    /// retired instructions, keeping the standing sabotage rules — the
    /// minimization step when building a `.repro` bundle. Pre-entry
    /// cache-directed events would be no-ops against the restored VM's
    /// cold cache anyway; dropping them keeps the bundle small and the
    /// replay obviously aligned.
    pub fn trimmed_to(&self, v_insts: u64) -> ReplayLog {
        let start = self
            .events
            .iter()
            .position(|ev| matches!(*ev, ReplayEvent::Run { budget } if budget > v_insts))
            .unwrap_or(self.events.len());
        // Background install/drop events anchored at or before the
        // checkpoint are already reflected in the restored cache (or in
        // its absence: a restored VM simply re-translates), so only the
        // ones anchored past the checkpoint stay live.
        let events = self.events[start..]
            .iter()
            .filter(|ev| match **ev {
                ReplayEvent::BgInstall { at_v_insts, .. }
                | ReplayEvent::BgDrop { at_v_insts, .. } => at_v_insts > v_insts,
                _ => true,
            })
            .copied()
            .collect();
        ReplayLog {
            seed: self.seed,
            sabotage: self.sabotage.clone(),
            events,
        }
    }
}

fn put_event(p: &mut Vec<u8>, ev: &ReplayEvent) {
    match *ev {
        ReplayEvent::Run { budget } => {
            wire::put_u8(p, 0);
            wire::put_u64(p, budget);
        }
        ReplayEvent::LinkClear {
            fragment_vstart,
            slot,
        } => {
            wire::put_u8(p, 1);
            wire::put_u64(p, fragment_vstart);
            wire::put_u32(p, slot);
        }
        ReplayEvent::LinkPoison {
            fragment_vstart,
            slot,
        } => {
            wire::put_u8(p, 2);
            wire::put_u64(p, fragment_vstart);
            wire::put_u32(p, slot);
        }
        ReplayEvent::TargetPoison {
            fragment_vstart,
            slot,
        } => {
            wire::put_u8(p, 3);
            wire::put_u64(p, fragment_vstart);
            wire::put_u32(p, slot);
        }
        ReplayEvent::VpcCorrupt { fragment_vstart } => {
            wire::put_u8(p, 4);
            wire::put_u64(p, fragment_vstart);
        }
        ReplayEvent::EpochFlip => wire::put_u8(p, 5),
        ReplayEvent::CodeWrite { addr, len } => {
            wire::put_u8(p, 6);
            wire::put_u64(p, addr);
            wire::put_u64(p, len);
        }
        ReplayEvent::AuditHeal => wire::put_u8(p, 7),
        ReplayEvent::BgInstall {
            fragment_vstart,
            at_v_insts,
        } => {
            wire::put_u8(p, 8);
            wire::put_u64(p, fragment_vstart);
            wire::put_u64(p, at_v_insts);
        }
        ReplayEvent::BgDrop {
            fragment_vstart,
            at_v_insts,
        } => {
            wire::put_u8(p, 9);
            wire::put_u64(p, fragment_vstart);
            wire::put_u64(p, at_v_insts);
        }
        ReplayEvent::StagedDrop { fragment_vstart } => {
            wire::put_u8(p, 10);
            wire::put_u64(p, fragment_vstart);
        }
    }
}

fn take_event(c: &mut Cursor<'_>) -> Result<ReplayEvent, SnapshotError> {
    Ok(match c.take_u8()? {
        0 => ReplayEvent::Run {
            budget: c.take_u64()?,
        },
        1 => ReplayEvent::LinkClear {
            fragment_vstart: c.take_u64()?,
            slot: c.take_u32()?,
        },
        2 => ReplayEvent::LinkPoison {
            fragment_vstart: c.take_u64()?,
            slot: c.take_u32()?,
        },
        3 => ReplayEvent::TargetPoison {
            fragment_vstart: c.take_u64()?,
            slot: c.take_u32()?,
        },
        4 => ReplayEvent::VpcCorrupt {
            fragment_vstart: c.take_u64()?,
        },
        5 => ReplayEvent::EpochFlip,
        6 => ReplayEvent::CodeWrite {
            addr: c.take_u64()?,
            len: c.take_u64()?,
        },
        7 => ReplayEvent::AuditHeal,
        8 => ReplayEvent::BgInstall {
            fragment_vstart: c.take_u64()?,
            at_v_insts: c.take_u64()?,
        },
        9 => ReplayEvent::BgDrop {
            fragment_vstart: c.take_u64()?,
            at_v_insts: c.take_u64()?,
        },
        10 => ReplayEvent::StagedDrop {
            fragment_vstart: c.take_u64()?,
        },
        // An unknown tag means the artifact is newer than this build —
        // report it as a version problem, not corruption.
        tag => {
            return Err(SnapshotError::BadVersion {
                version: tag as u32,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayLog {
        ReplayLog {
            seed: 0xC0FFEE,
            sabotage: vec![Sabotage {
                vstart: 0x1_0040,
                slot: 3,
                imm_xor: 5,
            }],
            events: vec![
                ReplayEvent::Run { budget: 100 },
                ReplayEvent::LinkClear {
                    fragment_vstart: 0x1_0040,
                    slot: 7,
                },
                ReplayEvent::AuditHeal,
                ReplayEvent::Run { budget: 200 },
                ReplayEvent::EpochFlip,
                ReplayEvent::CodeWrite {
                    addr: 0x1_0000,
                    len: 8,
                },
                ReplayEvent::AuditHeal,
                ReplayEvent::Run { budget: 4_000 },
            ],
        }
    }

    #[test]
    fn wire_roundtrip_is_identity() {
        let log = sample();
        let back = ReplayLog::from_bytes(&log.to_bytes()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            ReplayLog::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn trim_drops_pre_entry_events_keeps_sabotage() {
        let log = sample();
        let t = log.trimmed_to(150);
        assert_eq!(t.sabotage, log.sabotage);
        assert_eq!(t.events.first(), Some(&ReplayEvent::Run { budget: 200 }));
        assert_eq!(t.events.len(), 5);
        // Trimming past every anchor leaves only the rules.
        assert!(log.trimmed_to(10_000).events.is_empty());
    }

    #[test]
    fn background_events_roundtrip_and_trim_by_anchor() {
        let log = ReplayLog {
            seed: 9,
            sabotage: Vec::new(),
            events: vec![
                ReplayEvent::Run { budget: 100 },
                ReplayEvent::BgInstall {
                    fragment_vstart: 0x1_0040,
                    at_v_insts: 57,
                },
                ReplayEvent::Run { budget: 300 },
                ReplayEvent::BgDrop {
                    fragment_vstart: 0x1_0080,
                    at_v_insts: 150,
                },
                ReplayEvent::BgInstall {
                    fragment_vstart: 0x1_00c0,
                    at_v_insts: 260,
                },
                ReplayEvent::StagedDrop {
                    fragment_vstart: 0x1_0100,
                },
            ],
        };
        let back = ReplayLog::from_bytes(&log.to_bytes()).unwrap();
        assert_eq!(back, log);
        // A checkpoint at 200 keeps the tail Run, drops the background
        // events already reflected in it, and keeps the one still due.
        let t = log.trimmed_to(200);
        assert_eq!(
            t.events,
            vec![
                ReplayEvent::Run { budget: 300 },
                ReplayEvent::BgInstall {
                    fragment_vstart: 0x1_00c0,
                    at_v_insts: 260,
                },
                ReplayEvent::StagedDrop {
                    fragment_vstart: 0x1_0100,
                },
            ]
        );
    }
}
