//! # ildp-core — the dynamic binary translator and co-designed VM
//!
//! The primary contribution of Kim & Smith, *Dynamic Binary Translation
//! for Accumulator-Oriented Architectures* (CGO 2003): a low-overhead DBT
//! system that translates Alpha (the V-ISA) to the accumulator-oriented
//! I-ISA, identifying inter-instruction dependence chains (strands) and
//! encoding them as accumulator assignments **without re-scheduling the
//! code** — the distributed superscalar hardware handles scheduling.
//!
//! Pipeline (paper Section 3):
//!
//! 1. interpret and profile ([`interp_step`]) with MRET hot-path detection;
//! 2. collect a superblock along the interpreted path
//!    ([`Superblock`], [`decompose`]);
//! 3. classify value usage ([`analyze`]), form strands and assign
//!    accumulators ([`plan`]);
//! 4. emit basic- or modified-form I-ISA code ([`Translator`]) with
//!    chaining per [`ChainPolicy`], install it in the [`TranslationCache`]
//!    and patch earlier exits;
//! 5. execute translated fragments ([`Engine`]) — streaming retired
//!    instructions into a timing model — with precise-trap recovery;
//! 6. the [`Vm`] orchestrates mode switching and collects the paper's
//!    statistics (Table 2, Figures 4–9).
//!
//! The crate also contains the *code-straightening-only* translator
//! ([`StraightenedVm`]) used by the paper to isolate chaining effects on a
//! conventional superscalar (Figures 4–6).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod artifact;
mod classify;
mod cost;
mod engine;
mod error;
mod fragment;
mod pipeline;
mod profile;
mod replay;
mod snapshot;
mod straighten;
mod strands;
mod superblock;
mod translate;
mod vm;
pub mod wire;

pub use artifact::{
    artifact_key, superblock_digest, translator_digest, ArtifactKey, FragmentArtifact,
    FragmentStore, StoreStats, ARTIFACT_MAGIC, ARTIFACT_VERSION, STORE_MAGIC, STORE_VERSION,
};
pub use classify::{
    analyze, analyze_oracle, CategoryCounts, Dataflow, Reaching, UsageCat, ValueId, ValueInfo,
};
pub use cost::CostModel;
pub use engine::{Engine, EngineConfig, EngineStats, FragExit, NullSink, TraceSink};
pub use error::{SnapshotError, VmError};
pub use fragment::{
    Fragment, FragmentId, IMeta, RecoveryEntry, TranslationCache, CODE_CACHE_BASE,
    DISPATCH_COST_INSTS, DISPATCH_IADDR, SMC_PAGE_SHIFT,
};
pub use pipeline::{translate_job, TranslatePool, TranslateRequest, TranslateResponse};
pub use profile::{
    collect_superblock, collect_superblock_with_output, interp_step, Candidates, InterpEvent,
    ProfileConfig,
};
pub use replay::{ReplayEvent, ReplayLog, Sabotage, REPLAY_MAGIC, REPLAY_VERSION};
pub use snapshot::{program_digest, Snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use straighten::{StraightenStats, StraightenedVm};
pub use strands::{plan, Role, TranslationPlan};
pub use superblock::{
    decompose, decompose_with, CollectedFlow, Node, NodeInput, NodeOp, SbEnd, SbInst, Superblock,
};
pub use translate::{ChainPolicy, TranslateStats, TranslatedCode, TranslationTrace, Translator};
pub use vm::{
    trace_original, FlushPolicy, InstallReview, InstallValidator, OnViolation, Vm, VmConfig,
    VmExit, VmStats,
};
