//! Dependence and usage identification (paper §3.3, first phase).
//!
//! Builds the def-use structure of a superblock's node list and classifies
//! every produced value's "globalness" — the paper's usage categories that
//! drive strand formation and determine how many `copy-to-GPR`
//! instructions the basic I-ISA needs:
//!
//! * **no user** — never read before being overwritten;
//! * **local** — read exactly once before being overwritten, with no
//!   fragment exit in between;
//! * **temp** — passed between the two halves of a decomposed instruction;
//! * **live-out global** — not overwritten inside the superblock;
//! * **communication global** — read more than once before overwrite;
//! * **local → global / no-user → global** — a local (or dead) value that
//!   must nevertheless be saved to a GPR because a side exit (conditional
//!   branch) intervenes before the register is overwritten (Fig. 7's extra
//!   copy categories for the basic ISA);
//! * **spill global** — upgraded during strand formation (two-local-input
//!   conflicts, accumulator exhaustion).

use crate::superblock::{Node, NodeInput};
use alpha_isa::Reg;
use std::collections::HashMap;

/// Identifier of a produced value within one superblock's dataflow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ValueId(pub u32);

/// The paper's output-value usage categories (Fig. 7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UsageCat {
    /// Never used before overwrite; no exit intervenes.
    NoUser,
    /// Used once before overwrite; no exit intervenes.
    Local,
    /// A decomposition temp (always accumulator-carried).
    Temp,
    /// Not overwritten before the superblock ends.
    LiveOut,
    /// Used more than once before overwrite.
    Communication,
    /// Local, but a side exit precedes the overwrite — needs a GPR copy in
    /// the basic ISA.
    LocalToGlobal,
    /// Dead, but a side exit precedes the overwrite — needs a GPR copy in
    /// the basic ISA.
    NoUserToGlobal,
    /// Upgraded to a GPR-communicated value by strand formation.
    Spill,
}

impl UsageCat {
    /// Number of categories (the width of array-backed counters).
    pub const COUNT: usize = 8;

    /// Every category, in discriminant order (matches [`UsageCat::index`]).
    pub const ALL: [UsageCat; UsageCat::COUNT] = [
        UsageCat::NoUser,
        UsageCat::Local,
        UsageCat::Temp,
        UsageCat::LiveOut,
        UsageCat::Communication,
        UsageCat::LocalToGlobal,
        UsageCat::NoUserToGlobal,
        UsageCat::Spill,
    ];

    /// Dense index for array-backed counters (the enum discriminant).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether the value must be available in a GPR (in the basic ISA this
    /// costs a `copy-to-GPR`; in the modified ISA the destination
    /// specifier covers it).
    pub fn is_global(self) -> bool {
        matches!(
            self,
            UsageCat::LiveOut
                | UsageCat::Communication
                | UsageCat::LocalToGlobal
                | UsageCat::NoUserToGlobal
                | UsageCat::Spill
        )
    }

    /// Whether the value is carried to its consumer through an accumulator.
    ///
    /// Local and temp values always are; local→global values are too (the
    /// GPR copy is only for architected state). Communication and live-out
    /// values are read back from GPRs.
    pub fn is_acc_carried(self) -> bool {
        matches!(
            self,
            UsageCat::NoUser
                | UsageCat::Local
                | UsageCat::Temp
                | UsageCat::LocalToGlobal
                | UsageCat::NoUserToGlobal
        )
    }
}

/// Value counts per usage category, backed by a [`UsageCat::index`]-indexed
/// array — one representation shared by the static (per-superblock) and
/// dynamic ([`crate::EngineStats`]) sides of the Figure 7 statistic, with no
/// per-superblock allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CategoryCounts(pub [u64; UsageCat::COUNT]);

impl CategoryCounts {
    /// Increments the count for `cat`.
    pub fn bump(&mut self, cat: UsageCat) {
        self.0[cat.index()] += 1;
    }

    /// The count for one category.
    pub fn category(&self, cat: UsageCat) -> u64 {
        self.0[cat.index()]
    }

    /// Total values counted across all categories.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates `(category, count)` pairs in [`UsageCat::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (UsageCat, u64)> + '_ {
        UsageCat::ALL.iter().map(move |&c| (c, self.0[c.index()]))
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &CategoryCounts) {
        for k in 0..UsageCat::COUNT {
            self.0[k] += other.0[k];
        }
    }
}

/// A resolved input operand: where the value a node reads actually comes
/// from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reaching {
    /// A value produced by an earlier node in this superblock.
    Value(ValueId),
    /// A register that is live into the superblock (read before any def).
    LiveIn(Reg),
    /// An immediate.
    Imm(i16),
}

/// One produced value's def-use record.
#[derive(Clone, Debug)]
pub struct ValueInfo {
    /// Producing node index.
    pub producer: u32,
    /// The architected register this value defines (`None` for temps).
    pub reg: Option<Reg>,
    /// Node indices that read this value, in order.
    pub uses: Vec<u32>,
    /// The node index that overwrites the register (`None` if the value is
    /// live past the end of the superblock). Always `None` for temps.
    pub redef: Option<u32>,
    /// Assigned usage category.
    pub category: UsageCat,
}

/// The dataflow analysis result for one superblock.
#[derive(Clone, Debug)]
pub struct Dataflow {
    /// One record per produced value, in production order.
    pub values: Vec<ValueInfo>,
    /// Per node: the resolved source of each input slot.
    pub reaching: Vec<[Option<Reaching>; 3]>,
    /// Per node: the value it produces, if any.
    pub produced: Vec<Option<ValueId>>,
    /// Registers read before any definition (live-in globals).
    pub live_ins: Vec<Reg>,
}

impl Dataflow {
    /// The value record for `id`.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.0 as usize]
    }

    /// Mutable value record for `id`.
    pub fn value_mut(&mut self, id: ValueId) -> &mut ValueInfo {
        &mut self.values[id.0 as usize]
    }

    /// Whether `id` is carried to its consumers through an accumulator.
    pub fn is_local_value(&self, id: ValueId) -> bool {
        self.value(id).category.is_acc_carried() && !self.value(id).uses.is_empty()
    }

    /// Counts values per category (the Fig. 7 statistic, static form;
    /// the VM weights these by execution counts for the dynamic figure).
    pub fn category_counts(&self) -> CategoryCounts {
        let mut out = CategoryCounts::default();
        for v in &self.values {
            out.bump(v.category);
        }
        out
    }
}

/// Builds def-use records and classifies every produced value.
///
/// `nodes` is the decomposed node list of one superblock (see
/// [`crate::decompose`]).
pub fn analyze(nodes: &[Node]) -> Dataflow {
    analyze_with(nodes, false)
}

/// [`analyze`] with **oracle boundaries** (paper §4.4's reference to the
/// ISCA 2002 oracle trace): side exits are not treated as state
/// boundaries, so no `local→global` / `no-user→global` upgrades occur and
/// only true communication and genuine live-outs are global. Statistics
/// only — code translated this way could not recover state at exits.
pub fn analyze_oracle(nodes: &[Node]) -> Dataflow {
    analyze_with(nodes, true)
}

fn analyze_with(nodes: &[Node], oracle: bool) -> Dataflow {
    let n = nodes.len();
    let mut values: Vec<ValueInfo> = Vec::with_capacity(n);
    let mut reaching: Vec<[Option<Reaching>; 3]> = vec![[None; 3]; n];
    let mut produced: Vec<Option<ValueId>> = vec![None; n];
    let mut live_ins: Vec<Reg> = Vec::new();
    let mut last_def: HashMap<Reg, ValueId> = HashMap::new();
    let mut temp_def: HashMap<u32, ValueId> = HashMap::new();
    let mut next_temp = 0u32;

    for (i, node) in nodes.iter().enumerate() {
        // Resolve inputs against reaching definitions.
        for (slot, input) in node.inputs.iter().enumerate() {
            let Some(input) = input else { continue };
            let r = match *input {
                NodeInput::Imm(v) => Reaching::Imm(v),
                NodeInput::Temp(t) => {
                    let id = temp_def[&t];
                    values[id.0 as usize].uses.push(i as u32);
                    Reaching::Value(id)
                }
                NodeInput::Reg(reg) => match last_def.get(&reg) {
                    Some(&id) => {
                        values[id.0 as usize].uses.push(i as u32);
                        Reaching::Value(id)
                    }
                    None => {
                        if !live_ins.contains(&reg) {
                            live_ins.push(reg);
                        }
                        Reaching::LiveIn(reg)
                    }
                },
            };
            reaching[i][slot] = Some(r);
        }
        // Record the produced value.
        if node.produces_temp {
            let id = ValueId(values.len() as u32);
            values.push(ValueInfo {
                producer: i as u32,
                reg: None,
                uses: Vec::new(),
                redef: None,
                category: UsageCat::Temp,
            });
            temp_def.insert(next_temp, id);
            next_temp += 1;
            produced[i] = Some(id);
        } else if let Some(reg) = node.out {
            if !reg.is_zero() {
                let id = ValueId(values.len() as u32);
                if let Some(&prev) = last_def.get(&reg) {
                    values[prev.0 as usize].redef = Some(i as u32);
                }
                values.push(ValueInfo {
                    producer: i as u32,
                    reg: Some(reg),
                    uses: Vec::new(),
                    redef: None,
                    category: UsageCat::NoUser, // classified below
                });
                last_def.insert(reg, id);
                produced[i] = Some(id);
            }
        }
    }

    // Exit positions (side exits and the final control transfer).
    let exit_positions: Vec<u32> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_exit)
        .map(|(i, _)| i as u32)
        .collect();
    let exit_between = |lo: u32, hi_excl: Option<u32>| -> bool {
        !oracle
            && exit_positions
                .iter()
                .any(|&e| e > lo && hi_excl.is_none_or(|h| e < h))
    };

    // Classify (paper §3.3 usage categories).
    for v in values.iter_mut() {
        if v.reg.is_none() {
            v.category = UsageCat::Temp;
            continue;
        }
        let use_count = v.uses.len();
        v.category = if use_count >= 2 {
            UsageCat::Communication
        } else if v.redef.is_none() {
            UsageCat::LiveOut
        } else {
            let crosses_exit = exit_between(v.producer, v.redef);
            match (use_count, crosses_exit) {
                (1, false) => UsageCat::Local,
                (1, true) => UsageCat::LocalToGlobal,
                (0, false) => UsageCat::NoUser,
                (0, true) => UsageCat::NoUserToGlobal,
                _ => unreachable!(),
            }
        };
    }

    Dataflow {
        values,
        reaching,
        produced,
        live_ins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::superblock::{decompose, CollectedFlow, SbEnd, SbInst, Superblock};
    use alpha_isa::{BranchOp, Inst, MemOp, Operand, OperateOp};

    fn r(n: u8) -> Reg {
        Reg::new(n)
    }

    fn op(opr: OperateOp, ra: u8, rb: u8, rc: u8) -> Inst {
        Inst::Operate {
            op: opr,
            ra: r(ra),
            rb: Operand::Reg(r(rb)),
            rc: r(rc),
        }
    }

    fn build(insts: Vec<Inst>, with_exit_at: Option<usize>) -> Dataflow {
        let sb_insts: Vec<SbInst> = insts
            .into_iter()
            .enumerate()
            .map(|(i, inst)| SbInst {
                vaddr: 0x1000 + (i as u64) * 4,
                inst,
                flow: if Some(i) == with_exit_at {
                    CollectedFlow::CondNotTaken {
                        taken_target: 0x9000,
                    }
                } else {
                    CollectedFlow::Sequential
                },
            })
            .collect();
        let sb = Superblock {
            start: 0x1000,
            insts: sb_insts,
            end: SbEnd::Halt,
        };
        analyze(&decompose(&sb))
    }

    #[test]
    fn single_use_no_exit_is_local() {
        // r1 = r2+r3 ; r4 = r1+r2 ; r1 = r2+r2 (overwrite)
        let df = build(
            vec![
                op(OperateOp::Addq, 2, 3, 1),
                op(OperateOp::Addq, 1, 2, 4),
                op(OperateOp::Addq, 2, 2, 1),
            ],
            None,
        );
        let v0 = &df.values[0];
        assert_eq!(v0.reg, Some(r(1)));
        assert_eq!(v0.uses.len(), 1);
        assert_eq!(v0.redef, Some(2));
        assert_eq!(v0.category, UsageCat::Local);
    }

    #[test]
    fn double_use_is_communication() {
        let df = build(
            vec![
                op(OperateOp::Addq, 2, 3, 1),
                op(OperateOp::Addq, 1, 2, 4),
                op(OperateOp::Addq, 1, 3, 5),
                op(OperateOp::Addq, 2, 2, 1),
            ],
            None,
        );
        assert_eq!(df.values[0].category, UsageCat::Communication);
    }

    #[test]
    fn unredefined_value_is_liveout() {
        let df = build(vec![op(OperateOp::Addq, 2, 3, 1)], None);
        assert_eq!(df.values[0].category, UsageCat::LiveOut);
    }

    #[test]
    fn exit_before_overwrite_upgrades_local() {
        // r1 = r2+r3 ; use r1 ; [cond branch exit] ; r1 = ...
        let df = build(
            vec![
                op(OperateOp::Addq, 2, 3, 1),
                op(OperateOp::Addq, 1, 2, 4),
                Inst::Branch {
                    op: BranchOp::Beq,
                    ra: r(5),
                    disp: 8,
                },
                op(OperateOp::Addq, 2, 2, 1),
            ],
            Some(2),
        );
        assert_eq!(df.values[0].category, UsageCat::LocalToGlobal);
        // The branch-condition producer is elsewhere (live-in r5).
        assert!(df.live_ins.contains(&r(5)));
    }

    #[test]
    fn dead_value_categories() {
        let df = build(
            vec![
                op(OperateOp::Addq, 2, 3, 1), // dead: overwritten next
                op(OperateOp::Addq, 2, 2, 1),
            ],
            None,
        );
        assert_eq!(df.values[0].category, UsageCat::NoUser);
    }

    #[test]
    fn temps_from_memory_decomposition() {
        let df = build(
            vec![Inst::Mem {
                op: MemOp::Ldq,
                ra: r(1),
                rb: r(2),
                disp: 8,
            }],
            None,
        );
        // Two values: the address temp and the load result.
        assert_eq!(df.values.len(), 2);
        assert_eq!(df.values[0].category, UsageCat::Temp);
        assert_eq!(df.values[0].uses, vec![1]);
        assert_eq!(df.values[1].category, UsageCat::LiveOut);
    }

    #[test]
    fn live_ins_recorded_once() {
        let df = build(
            vec![op(OperateOp::Addq, 2, 3, 1), op(OperateOp::Addq, 2, 3, 4)],
            None,
        );
        assert_eq!(df.live_ins, vec![r(2), r(3)]);
    }

    #[test]
    fn category_counts_sum_to_values() {
        let df = build(
            vec![
                op(OperateOp::Addq, 2, 3, 1),
                op(OperateOp::Addq, 1, 2, 4),
                op(OperateOp::Addq, 2, 2, 1),
            ],
            None,
        );
        let counts = df.category_counts();
        assert_eq!(counts.total(), df.values.len() as u64);
        let itemized: u64 = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(itemized, counts.total());
    }

    #[test]
    fn globalness_predicates() {
        assert!(UsageCat::Communication.is_global());
        assert!(UsageCat::LocalToGlobal.is_global());
        assert!(!UsageCat::Local.is_global());
        assert!(UsageCat::Local.is_acc_carried());
        assert!(UsageCat::LocalToGlobal.is_acc_carried());
        assert!(!UsageCat::Communication.is_acc_carried());
        assert!(UsageCat::Temp.is_acc_carried());
    }
}
