//! Interpretation, profiling and MRET superblock collection (paper §3.1).
//!
//! The DBT system starts by interpreting the V-ISA program, counting
//! executions of *trace start candidates*:
//!
//! * targets of register-indirect jumps (`JMP`/`JSR`/`RET`),
//! * targets of backward conditional branches,
//! * exit targets of existing fragments.
//!
//! When a candidate's counter reaches the threshold (paper: 50), the
//! interpreted path is followed to form a superblock — the
//! Most-Recently-Executed-Tail heuristic of Dynamo. Collection ends at a
//! register-indirect jump or trap, a backward taken conditional branch, a
//! revisited address (cycle), or the maximum size (paper: 200).

use crate::fragment::TranslationCache;
use crate::superblock::{CollectedFlow, SbEnd, SbInst, Superblock};
use alpha_isa::{
    step, AlignPolicy, BranchOp, Control, CpuState, DecodeCache, Inst, Memory, Program, Trap,
};
use std::collections::{HashMap, HashSet};

/// Profiling configuration (paper §4.1: threshold 50, maximum superblock
/// size 200).
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Executions of a start candidate before a superblock is formed.
    pub threshold: u32,
    /// Maximum superblock length in V-ISA instructions.
    pub max_superblock: usize,
    /// Alignment-trap policy for interpretation.
    pub align: AlignPolicy,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            threshold: 50,
            max_superblock: 200,
            align: AlignPolicy::Enforce,
        }
    }
}

/// Counters for superblock start candidates (the paper uses an unlimited
/// number of counters; so do we).
#[derive(Clone, Debug, Default)]
pub struct Candidates {
    counters: HashMap<u64, u32>,
}

impl Candidates {
    /// Creates an empty counter table.
    pub fn new() -> Candidates {
        Candidates::default()
    }

    /// Bumps the counter for `vaddr`; returns `true` when it reaches
    /// `threshold` (the address is now hot).
    pub fn bump(&mut self, vaddr: u64, threshold: u32) -> bool {
        let c = self.counters.entry(vaddr).or_insert(0);
        *c += 1;
        *c == threshold
    }

    /// Whether `vaddr` has already crossed `threshold`.
    pub fn is_hot(&self, vaddr: u64, threshold: u32) -> bool {
        self.counters.get(&vaddr).is_some_and(|c| *c >= threshold)
    }

    /// Forgets the counter for `vaddr`. [`bump`](Candidates::bump) fires
    /// exactly once, at the threshold — so after a fragment is invalidated
    /// (evicted, or killed by a self-modifying store) its start address
    /// must be reset or it could never re-heat and re-translate.
    pub fn reset(&mut self, vaddr: u64) {
        self.counters.remove(&vaddr);
    }

    /// Iterates `(address, count)` over every counter, in unspecified
    /// order (snapshot capture sorts).
    pub fn counters(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counters.iter().map(|(&a, &c)| (a, c))
    }

    /// Sets the counter for `vaddr` (snapshot restore); a count of 0
    /// clears it. [`bump`](Candidates::bump) fires only when a counter
    /// *reaches* the threshold exactly, so restore clamps counts to one
    /// below it — a counter restored at or past the threshold would never
    /// fire again.
    pub fn set(&mut self, vaddr: u64, count: u32) {
        if count == 0 {
            self.counters.remove(&vaddr);
        } else {
            self.counters.insert(vaddr, count);
        }
    }

    /// Number of distinct candidate addresses seen.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no candidates have been seen.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// The result of one interpretation step inside the VM loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterpEvent {
    /// Ordinary instruction executed; continue interpreting.
    Continue,
    /// The program halted.
    Halted,
    /// A candidate address just became hot; the VM should collect a
    /// superblock starting there (the PC is already at it).
    Hot {
        /// The hot start address.
        vaddr: u64,
    },
    /// A trap was raised (delivered precisely by the interpreter).
    Trapped {
        /// Faulting V-address.
        vaddr: u64,
        /// The condition.
        trap: Trap,
    },
    /// The executed instruction stored into a guest page holding
    /// translated source code. The store **has** completed (interpretation
    /// is always architecturally current); the VM must invalidate the
    /// affected fragments before any of them runs again.
    SmcStore {
        /// Guest address written.
        addr: u64,
        /// Width of the store in bytes.
        len: u64,
    },
}

/// Interprets a single instruction, updating candidate counters for the
/// *next* PC when the executed instruction makes it a candidate.
///
/// Fetches through the predecoded [`DecodeCache`] (one decode per static
/// instruction for the whole run, not one per step).
///
/// `stats` counts interpreted instructions (for the translation-overhead
/// model).
///
/// When `smc` is a translation cache, stores into pages holding
/// translated source code are reported as [`InterpEvent::SmcStore`] so
/// the VM can invalidate before the stale fragments run again; `None`
/// disables the check (no cache to protect).
#[allow(clippy::too_many_arguments)]
pub fn interp_step(
    cpu: &mut CpuState,
    mem: &mut Memory,
    decoded: &DecodeCache,
    candidates: &mut Candidates,
    config: &ProfileConfig,
    interpreted: &mut u64,
    output: &mut Vec<u8>,
    smc: Option<&TranslationCache>,
) -> InterpEvent {
    let pc = cpu.pc;
    let inst = match decoded.fetch(pc) {
        Ok(i) => i,
        Err(trap) => return InterpEvent::Trapped { vaddr: pc, trap },
    };
    let outcome = match step(cpu, mem, inst, config.align) {
        Ok(o) => o,
        Err(trap) => return InterpEvent::Trapped { vaddr: pc, trap },
    };
    if let Some(b) = outcome.output {
        output.push(b);
    }
    // NOPs are excluded from the retire count in *every* mode — superblock
    // collection drops them and translated code never emits them — so
    // counting them here would make `Vm::v_instructions` depend on how
    // much of the run happened to execute translated. Keeping the count
    // NOP-free in the interpreter too makes it a pure function of the
    // architected position, which snapshot/replay lockstep relies on.
    if !inst.is_nop() {
        *interpreted += 1;
    }
    if let (Some(cache), Some(acc)) = (smc, outcome.mem) {
        // Stores never transfer control on Alpha, so reporting the SMC hit
        // instead of the (Sequential) control outcome loses nothing.
        if acc.is_store && cache.smc_hit(acc.addr, acc.bytes as u64) {
            return InterpEvent::SmcStore {
                addr: acc.addr,
                len: acc.bytes as u64,
            };
        }
    }
    match outcome.control {
        Control::Halt => InterpEvent::Halted,
        Control::Indirect { target, .. } => {
            if candidates.bump(target, config.threshold) {
                InterpEvent::Hot { vaddr: target }
            } else {
                InterpEvent::Continue
            }
        }
        Control::Taken { target } => {
            // Backward conditional branches make their targets candidates.
            if matches!(inst, Inst::Branch { op, .. }
                if !matches!(op, BranchOp::Br | BranchOp::Bsr))
                && target <= pc
                && candidates.bump(target, config.threshold)
            {
                InterpEvent::Hot { vaddr: target }
            } else {
                InterpEvent::Continue
            }
        }
        _ => InterpEvent::Continue,
    }
}

/// Follows the interpreted path from the current PC, executing and
/// recording instructions until a superblock ending condition (paper
/// §3.1). NOP instructions are executed but not recorded.
///
/// # Errors
///
/// Returns the trap if one is raised mid-collection (the partial
/// superblock is abandoned, matching the paper's "trap instructions end
/// fragments" rule — the VM falls back to interpretation).
pub fn collect_superblock(
    cpu: &mut CpuState,
    mem: &mut Memory,
    program: &Program,
    config: &ProfileConfig,
) -> Result<Superblock, (u64, Trap)> {
    collect_superblock_with_output(cpu, mem, program, config, &mut Vec::new())
}

/// [`collect_superblock`], additionally appending console bytes produced
/// while the collection executes the path.
pub fn collect_superblock_with_output(
    cpu: &mut CpuState,
    mem: &mut Memory,
    program: &Program,
    config: &ProfileConfig,
    output: &mut Vec<u8>,
) -> Result<Superblock, (u64, Trap)> {
    let start = cpu.pc;
    let mut insts: Vec<SbInst> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    loop {
        let pc = cpu.pc;
        if seen.contains(&pc) {
            return Ok(Superblock {
                start,
                insts,
                end: SbEnd::Cycle { next: pc },
            });
        }
        if insts.len() >= config.max_superblock {
            return Ok(Superblock {
                start,
                insts,
                end: SbEnd::MaxSize { next: pc },
            });
        }
        let inst = program.fetch(pc).map_err(|t| (pc, t))?;
        let outcome = step(cpu, mem, inst, config.align).map_err(|t| (pc, t))?;
        if let Some(b) = outcome.output {
            output.push(b);
        }
        if inst.is_nop() {
            continue; // removed by translation (paper §4.4)
        }
        seen.insert(pc);
        let seq = pc.wrapping_add(4);
        let (flow, end) = match outcome.control {
            Control::Halt => (CollectedFlow::Sequential, Some(SbEnd::Halt)),
            Control::Indirect { kind, target } => (
                CollectedFlow::Indirect { kind, target },
                Some(SbEnd::IndirectJump),
            ),
            Control::Taken { target } => match inst {
                Inst::Branch { op, ra, .. } => {
                    if op.is_unconditional() {
                        let links = !ra.is_zero();
                        (CollectedFlow::Direct { target, links }, None)
                    } else if target <= pc {
                        (
                            CollectedFlow::CondTaken {
                                taken_target: target,
                                fallthrough: seq,
                            },
                            Some(SbEnd::BackwardTakenBranch {
                                target,
                                fallthrough: seq,
                            }),
                        )
                    } else {
                        (
                            CollectedFlow::CondTaken {
                                taken_target: target,
                                fallthrough: seq,
                            },
                            None,
                        )
                    }
                }
                _ => unreachable!("only branches produce Taken"),
            },
            Control::NotTaken => {
                let target = match inst {
                    Inst::Branch { disp, .. } => seq.wrapping_add(((disp as i64) << 2) as u64),
                    _ => unreachable!("only branches produce NotTaken"),
                };
                (
                    CollectedFlow::CondNotTaken {
                        taken_target: target,
                    },
                    None,
                )
            }
            Control::Sequential => (CollectedFlow::Sequential, None),
        };
        insts.push(SbInst {
            vaddr: pc,
            inst,
            flow,
        });
        if let Some(end) = end {
            return Ok(Superblock { start, insts, end });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_isa::{Assembler, Reg};

    fn countdown_program() -> Program {
        let mut asm = Assembler::new(0x1000);
        asm.lda_imm(Reg::A0, 100);
        let top = asm.here("top");
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.addq(Reg::A0, Reg::A0, Reg::V0);
        asm.bne(Reg::A0, top);
        asm.halt();
        asm.finish().unwrap()
    }

    #[test]
    fn backward_branch_target_becomes_hot() {
        let program = countdown_program();
        let decoded = DecodeCache::new(&program);
        let (mut cpu, mut mem) = program.load();
        let mut cands = Candidates::new();
        let config = ProfileConfig {
            threshold: 10,
            ..ProfileConfig::default()
        };
        let mut interp = 0u64;
        let mut hot = None;
        for _ in 0..1000 {
            match interp_step(
                &mut cpu,
                &mut mem,
                &decoded,
                &mut cands,
                &config,
                &mut interp,
                &mut Vec::new(),
                None,
            ) {
                InterpEvent::Hot { vaddr } => {
                    hot = Some(vaddr);
                    break;
                }
                InterpEvent::Halted => break,
                InterpEvent::Continue => {}
                e => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(hot, Some(0x1004), "loop top becomes hot");
        // PC is at the hot address, ready for collection.
        assert_eq!(cpu.pc, 0x1004);
        assert!(interp > 10);
    }

    #[test]
    fn collection_ends_at_backward_taken_branch() {
        let program = countdown_program();
        let decoded = DecodeCache::new(&program);
        let (mut cpu, mut mem) = program.load();
        // Enter the loop first.
        let config = ProfileConfig::default();
        let mut c = Candidates::new();
        let mut n = 0;
        interp_step(
            &mut cpu,
            &mut mem,
            &decoded,
            &mut c,
            &config,
            &mut n,
            &mut Vec::new(),
            None,
        );
        assert_eq!(cpu.pc, 0x1004);
        let sb = collect_superblock(&mut cpu, &mut mem, &program, &config).unwrap();
        assert_eq!(sb.start, 0x1004);
        assert_eq!(sb.len(), 3);
        assert!(matches!(
            sb.end,
            SbEnd::BackwardTakenBranch { target: 0x1004, .. }
        ));
        // Collection executed one loop iteration.
        assert_eq!(cpu.pc, 0x1004);
    }

    #[test]
    fn collection_detects_cycles_without_branch_end() {
        // A loop closed by an unconditional BR (followed through), so the
        // cycle rule ends collection.
        let mut asm = Assembler::new(0x2000);
        let top = asm.here("top");
        asm.addq_imm(Reg::V0, 1, Reg::V0);
        asm.br(top);
        let program = asm.finish().unwrap();
        let (mut cpu, mut mem) = program.load();
        let config = ProfileConfig::default();
        let sb = collect_superblock(&mut cpu, &mut mem, &program, &config).unwrap();
        assert!(matches!(sb.end, SbEnd::Cycle { next: 0x2000 }));
        // The BR is recorded as a followed direct branch.
        assert!(matches!(
            sb.insts.last().unwrap().flow,
            CollectedFlow::Direct { links: false, .. }
        ));
    }

    #[test]
    fn collection_respects_max_size() {
        let mut asm = Assembler::new(0x3000);
        for _ in 0..50 {
            asm.addq_imm(Reg::V0, 1, Reg::V0);
        }
        asm.halt();
        let program = asm.finish().unwrap();
        let (mut cpu, mut mem) = program.load();
        let config = ProfileConfig {
            max_superblock: 10,
            ..ProfileConfig::default()
        };
        let sb = collect_superblock(&mut cpu, &mut mem, &program, &config).unwrap();
        assert_eq!(sb.len(), 10);
        assert!(matches!(sb.end, SbEnd::MaxSize { next: 0x3028 }));
    }

    #[test]
    fn nops_are_executed_but_not_recorded() {
        let mut asm = Assembler::new(0x4000);
        asm.nop();
        asm.nop();
        asm.addq_imm(Reg::V0, 1, Reg::V0);
        asm.halt();
        let program = asm.finish().unwrap();
        let (mut cpu, mut mem) = program.load();
        let sb =
            collect_superblock(&mut cpu, &mut mem, &program, &ProfileConfig::default()).unwrap();
        assert_eq!(sb.len(), 2); // addq + halt
        assert_eq!(sb.insts[0].vaddr, 0x4008);
    }

    #[test]
    fn collection_reports_traps() {
        let mut asm = Assembler::new(0x5000);
        asm.lda_imm(Reg::A0, 42);
        asm.gentrap();
        let program = asm.finish().unwrap();
        let (mut cpu, mut mem) = program.load();
        let err = collect_superblock(&mut cpu, &mut mem, &program, &ProfileConfig::default())
            .unwrap_err();
        assert_eq!(err.0, 0x5004);
        assert_eq!(err.1, Trap::GenTrap { code: 42 });
    }

    #[test]
    fn candidate_counters() {
        let mut c = Candidates::new();
        assert!(c.is_empty());
        for i in 1..50 {
            assert!(!c.bump(0x100, 50), "not hot at {i}");
        }
        assert!(c.bump(0x100, 50));
        assert!(c.is_hot(0x100, 50));
        assert!(!c.bump(0x100, 50), "hot fires exactly once");
        assert_eq!(c.len(), 1);
    }
}
