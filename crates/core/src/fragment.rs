//! Translated fragments and the translation cache.
//!
//! A *fragment* is a translated superblock installed in the code cache
//! (paper §3.1, after [3,4]). The [`TranslationCache`] owns all fragments,
//! assigns their I-ISA code addresses, maintains the V-PC → fragment map
//! (Figure 3's "PC translation lookup table"), and performs **fragment
//! chaining**: when a new fragment is installed, every earlier
//! `call-translator` exit that targets its V-address is patched into a
//! direct branch (paper §3.2).

use crate::classify::UsageCat;
use alpha_isa::Reg;
use ildp_isa::{Acc, IInst, ITarget, IsaForm};
use ildp_uarch::{DynInst, InstClass};
use std::collections::HashMap;

/// Identifier of an installed fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FragmentId(pub u32);

/// Per-instruction metadata carried alongside the I-ISA code (the
/// simulation-side analogue of the paper's PEI side tables).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IMeta {
    /// The V-address of the originating V-ISA instruction.
    pub vaddr: u64,
    /// V-ISA instructions retired when this instruction completes.
    pub vcount: u16,
    /// Usage category of the value this instruction produces (for the
    /// Figure 7 statistic), if it is the producing instruction of a
    /// classified value.
    pub category: Option<UsageCat>,
    /// Whether this instruction is fragment-chaining overhead (software
    /// jump prediction, dispatch transfers, RAS pushes).
    pub is_chain: bool,
}

impl IMeta {
    /// Metadata for a chaining-overhead instruction at `vaddr`.
    pub fn chain(vaddr: u64) -> IMeta {
        IMeta {
            vaddr,
            vcount: 0,
            category: None,
            is_chain: true,
        }
    }
}

/// Precise-trap recovery entry: at this PEI, the architected value of
/// `reg` lives in accumulator `acc` (basic-form fragments only).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryEntry {
    /// The architected register.
    pub reg: Reg,
    /// The accumulator holding its value.
    pub acc: Acc,
}

/// A translated superblock installed in the code cache.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// This fragment's id.
    pub id: FragmentId,
    /// The V-address of the first source instruction (embedded in the
    /// leading `SetVpcBase` instruction).
    pub vstart: u64,
    /// The fragment's I-ISA base address in the code cache.
    pub istart: u64,
    /// The translated instructions.
    pub insts: Vec<IInst>,
    /// Parallel per-instruction metadata.
    pub meta: Vec<IMeta>,
    /// Per-instruction I-addresses (cumulative from `istart`).
    pub iaddrs: Vec<u64>,
    /// The ISA form this fragment was translated to.
    pub form: IsaForm,
    /// Number of V-ISA instructions in the source superblock.
    pub src_inst_count: u32,
    /// Per PEI instruction index: accumulator-resident architected values
    /// to merge into the GPR file on a trap (basic form).
    pub recovery: HashMap<u32, Vec<RecoveryEntry>>,
    /// Predecoded per-instruction trace templates: everything about a
    /// [`DynInst`] that is static — PC, size, operand names, class, the
    /// fall-through `next_pc` — computed once at install time so tracing
    /// execution is copy-plus-patch instead of per-retire construction.
    pub templates: Vec<DynInst>,
    /// Per-instruction direct links: for a control transfer whose target
    /// I-address is resolved, the fragment whose entry point it is. Kept in
    /// lockstep with patching so the engine follows links without hashing
    /// through the I-address lookup map. Invalidated wholesale by
    /// [`TranslationCache::flush`] (the fragments are dropped).
    pub links: Vec<Option<FragmentId>>,
    /// Times this fragment has been entered (for statistics).
    pub entries: u64,
}

impl Fragment {
    /// Total encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.insts
            .iter()
            .map(|i| i.size_bytes(self.form) as u64)
            .sum()
    }

    /// Indices of PEI instructions with their V-addresses (the PEI table of
    /// paper §2.2).
    pub fn pei_table(&self) -> Vec<(u32, u64)> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.is_pei())
            .map(|(i, _)| (i as u32, self.meta[i].vaddr))
            .collect()
    }
}

/// The translation cache: installed fragments, the V-PC lookup map, and
/// pending cross-fragment patches.
///
/// # Examples
///
/// ```
/// use ildp_core::TranslationCache;
/// let cache = TranslationCache::new();
/// assert_eq!(cache.lookup(0x1000), None);
/// assert!(cache.fragments().is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct TranslationCache {
    fragments: Vec<Fragment>,
    by_vstart: HashMap<u64, FragmentId>,
    by_istart: HashMap<u64, FragmentId>,
    /// V-target → sites awaiting a fragment at that address.
    pending: HashMap<u64, Vec<(FragmentId, u32)>>,
    next_iaddr: u64,
    patches_applied: u64,
    flushes: u64,
    /// Bumped on every flush. I-addresses are never reused, so any cached
    /// reference stamped with an older epoch (an engine dual-RAS entry's
    /// direct link) is known stale without consulting the lookup maps.
    epoch: u64,
}

/// Base I-address of the code cache.
pub const CODE_CACHE_BASE: u64 = 0xF000_0000;

/// The I-address of the shared dispatch code. All `Dispatch` transfers
/// funnel through this address; its terminal indirect jump is what makes
/// the paper's `no_pred` chaining mispredict so badly (one BTB entry for
/// every indirect target in the program).
pub const DISPATCH_IADDR: u64 = 0xEFFF_0000;

/// Number of instructions executed by the shared dispatch sequence
/// (paper §3.2: "The dispatch code takes 20 instructions").
pub const DISPATCH_COST_INSTS: u32 = 20;

impl TranslationCache {
    /// Creates an empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache {
            next_iaddr: CODE_CACHE_BASE,
            ..TranslationCache::default()
        }
    }

    /// All installed fragments.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// The fragment translated from V-address `vaddr`, if any.
    pub fn lookup(&self, vaddr: u64) -> Option<FragmentId> {
        self.by_vstart.get(&vaddr).copied()
    }

    /// The fragment whose I-ISA entry point is `iaddr`.
    pub fn lookup_iaddr(&self, iaddr: u64) -> Option<FragmentId> {
        self.by_istart.get(&iaddr).copied()
    }

    /// Immutable access to a fragment.
    pub fn fragment(&self, id: FragmentId) -> &Fragment {
        &self.fragments[id.0 as usize]
    }

    /// Mutable access to a fragment (the VM engine updates entry counts).
    pub fn fragment_mut(&mut self, id: FragmentId) -> &mut Fragment {
        &mut self.fragments[id.0 as usize]
    }

    /// Total patches applied so far (chaining statistic).
    pub fn patches_applied(&self) -> u64 {
        self.patches_applied
    }

    /// Times the cache has been flushed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The current flush epoch. A direct fragment link captured together
    /// with this value stays valid exactly as long as the epoch is
    /// unchanged (fragments are only ever removed by [`flush`], which bumps
    /// it).
    ///
    /// [`flush`]: TranslationCache::flush
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Flushes the translation cache (the Dynamo-style response to a
    /// program phase change — paper §4.1 notes the cost of *not*
    /// occasionally flushing). All fragments, lookup entries and pending
    /// patches are dropped; I-addresses are never reused, so stale
    /// dual-RAS entries simply miss the `lookup_iaddr` map and fall back
    /// to dispatch.
    pub fn flush(&mut self) {
        self.fragments.clear();
        self.by_vstart.clear();
        self.by_istart.clear();
        self.pending.clear();
        self.flushes += 1;
        self.epoch += 1;
    }

    /// Total static code bytes installed.
    pub fn total_code_bytes(&self) -> u64 {
        self.fragments.iter().map(Fragment::size_bytes).sum()
    }

    /// Installs a translated fragment: assigns its I-addresses, registers
    /// it in the lookup maps, resolves its own exits against already
    /// installed fragments (including itself), and patches earlier
    /// fragments whose exits target it.
    ///
    /// # Panics
    ///
    /// Panics if a fragment for the same V-start is already installed
    /// (re-translation is not supported; the paper's system likewise keeps
    /// the first fragment formed for an address).
    pub fn install(
        &mut self,
        vstart: u64,
        form: IsaForm,
        insts: Vec<IInst>,
        meta: Vec<IMeta>,
        src_inst_count: u32,
        recovery: HashMap<u32, Vec<RecoveryEntry>>,
    ) -> FragmentId {
        assert_eq!(insts.len(), meta.len(), "metadata must parallel code");
        assert!(
            !self.by_vstart.contains_key(&vstart),
            "fragment for {vstart:#x} already installed"
        );
        let id = FragmentId(self.fragments.len() as u32);
        let istart = self.next_iaddr;
        let mut iaddrs = Vec::with_capacity(insts.len());
        let mut addr = istart;
        for inst in &insts {
            iaddrs.push(addr);
            addr += inst.size_bytes(form) as u64;
        }
        self.next_iaddr = (addr + 7) & !7;

        let templates = insts
            .iter()
            .enumerate()
            .map(|(k, inst)| {
                let pc = iaddrs[k];
                let next_pc = iaddrs
                    .get(k + 1)
                    .copied()
                    .unwrap_or(pc + inst.size_bytes(form) as u64);
                build_template(inst, pc, next_pc, meta[k].vcount, form)
            })
            .collect();
        let links = vec![None; insts.len()];

        let fragment = Fragment {
            id,
            vstart,
            istart,
            insts,
            meta,
            iaddrs,
            form,
            src_inst_count,
            recovery,
            templates,
            links,
            entries: 0,
        };
        self.fragments.push(fragment);
        self.by_vstart.insert(vstart, id);
        self.by_istart.insert(istart, id);

        // Resolve this fragment's exits against installed fragments.
        self.resolve_new_fragment(id);
        // Patch earlier call-translator sites that wanted this V-address.
        if let Some(sites) = self.pending.remove(&vstart) {
            for (fid, idx) in sites {
                self.patch_site(fid, idx, istart);
            }
        }
        id
    }

    fn resolve_new_fragment(&mut self, id: FragmentId) {
        let n = self.fragments[id.0 as usize].insts.len();
        for idx in 0..n as u32 {
            let inst = self.fragments[id.0 as usize].insts[idx as usize];
            let vtarget = match inst {
                IInst::CallTranslatorIfCond { vtarget, .. } => Some(vtarget),
                IInst::CallTranslator { vtarget } => Some(vtarget),
                _ => None,
            };
            if let Some(vt) = vtarget {
                match self.by_vstart.get(&vt).copied() {
                    Some(target) => {
                        let istart = self.fragments[target.0 as usize].istart;
                        self.patch_site(id, idx, istart);
                    }
                    None => self.pending.entry(vt).or_default().push((id, idx)),
                }
            }
            // Dual-RAS pushes: resolve the I-side return address when the
            // return-target fragment exists; otherwise leave it pointing at
            // dispatch (correct, just slower) and register for patching.
            if let IInst::PushDualRas { vret, iret } = inst {
                if iret == ITarget::Addr(DISPATCH_IADDR) {
                    match self.by_vstart.get(&vret).copied() {
                        Some(target) => {
                            let istart = self.fragments[target.0 as usize].istart;
                            self.fragments[id.0 as usize].insts[idx as usize] =
                                IInst::PushDualRas {
                                    vret,
                                    iret: ITarget::Addr(istart),
                                };
                            self.refresh_site(id, idx);
                        }
                        None => self.pending.entry(vret).or_default().push((id, idx)),
                    }
                }
            }
        }
    }

    /// Rewrites a `call-translator` site into a direct branch to `istart`
    /// (the paper's "patch"), or resolves a pending dual-RAS push.
    fn patch_site(&mut self, fid: FragmentId, idx: u32, istart: u64) {
        let inst = &mut self.fragments[fid.0 as usize].insts[idx as usize];
        *inst = match *inst {
            IInst::CallTranslatorIfCond { cond, acc, src, .. } => IInst::CondBranch {
                cond,
                acc,
                src,
                target: ITarget::Addr(istart),
            },
            IInst::CallTranslator { .. } => IInst::Branch {
                target: ITarget::Addr(istart),
            },
            IInst::PushDualRas { vret, .. } => IInst::PushDualRas {
                vret,
                iret: ITarget::Addr(istart),
            },
            other => panic!("patching non-patchable instruction {other:?}"),
        };
        self.patches_applied += 1;
        self.refresh_site(fid, idx);
    }

    /// Recomputes the trace template and direct link of one instruction
    /// from its (just rewritten) form, keeping both in lockstep with
    /// patching.
    fn refresh_site(&mut self, fid: FragmentId, idx: u32) {
        let f = &self.fragments[fid.0 as usize];
        let k = idx as usize;
        let inst = f.insts[k];
        let pc = f.iaddrs[k];
        let next_pc = f
            .iaddrs
            .get(k + 1)
            .copied()
            .unwrap_or(pc + inst.size_bytes(f.form) as u64);
        let template = build_template(&inst, pc, next_pc, f.meta[k].vcount, f.form);
        let link = self.link_of(&inst);
        let f = &mut self.fragments[fid.0 as usize];
        f.templates[k] = template;
        f.links[k] = link;
    }

    /// The fragment a resolved control-transfer target lands in, if the
    /// target I-address is a fragment entry point. `DISPATCH_IADDR` and
    /// unresolved targets yield `None`.
    fn link_of(&self, inst: &IInst) -> Option<FragmentId> {
        let addr = match *inst {
            IInst::CondBranch {
                target: ITarget::Addr(a),
                ..
            } => a,
            IInst::Branch {
                target: ITarget::Addr(a),
            } => a,
            IInst::PushDualRas {
                iret: ITarget::Addr(a),
                ..
            } => a,
            _ => return None,
        };
        if addr == DISPATCH_IADDR {
            return None;
        }
        self.by_istart.get(&addr).copied()
    }
}

/// Builds the static part of an instruction's retire record: operand
/// names, accumulator usage, class, and every field whose value does not
/// depend on runtime state. The engine copies this template and patches
/// only the dynamic fields (`taken`, `mem_addr`, `v_target`, taken-branch
/// `next_pc`) at retire time.
fn build_template(inst: &IInst, pc: u64, next_pc: u64, vcount: u16, form: IsaForm) -> DynInst {
    let mut d = DynInst::alu(pc, inst.size_bytes(form) as u8);
    let reads = inst.gpr_reads();
    d.srcs = [
        reads[0].map(|r| r.number()),
        reads[1].map(|r| r.number()),
        None,
    ];
    d.dst = inst.gpr_write().map(|r| r.number());
    let uses_acc = inst.reads_acc() || inst.writes_acc();
    d.acc = if uses_acc {
        inst.acc().map(|a| a.number())
    } else {
        None
    };
    d.acc_read = inst.reads_acc();
    d.acc_write = inst.writes_acc();
    d.next_pc = next_pc;
    d.vcount = vcount;
    match *inst {
        IInst::Op { op, .. } if op.is_multiply() => d.class = InstClass::IntMul,
        IInst::Load { .. } => d.class = InstClass::Load,
        IInst::Store { .. } => d.class = InstClass::Store,
        IInst::CondBranch { .. } | IInst::CallTranslatorIfCond { .. } => {
            d.class = InstClass::CondBranch;
        }
        IInst::Branch { target } => {
            d.class = InstClass::Branch;
            d.taken = true;
            if let ITarget::Addr(a) = target {
                d.next_pc = a;
            }
        }
        IInst::IndirectJump { .. } => d.class = InstClass::Return,
        IInst::PushDualRas { vret, iret } => {
            d.class = InstClass::DualRasPush;
            if let ITarget::Addr(i) = iret {
                d.ras_pair = Some((vret, i));
            }
        }
        IInst::CallTranslator { .. } | IInst::Dispatch { .. } => {
            d.class = InstClass::Branch;
            d.taken = true;
            d.next_pc = DISPATCH_IADDR;
        }
        _ => {}
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ildp_isa::{ASrc, CondKind};

    fn mk_insts(exit_vtarget: u64) -> (Vec<IInst>, Vec<IMeta>) {
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslator {
                vtarget: exit_vtarget,
            },
        ];
        let meta = vec![
            IMeta {
                vaddr: 0x1000,
                vcount: 0,
                category: None,
                is_chain: false,
            },
            IMeta::chain(0x1000),
        ];
        (insts, meta)
    }

    #[test]
    fn install_assigns_addresses_and_maps() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let id = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let f = cache.fragment(id);
        assert_eq!(f.istart, CODE_CACHE_BASE);
        assert_eq!(f.iaddrs[0], CODE_CACHE_BASE);
        assert!(f.iaddrs[1] > f.iaddrs[0]);
        assert_eq!(cache.lookup(0x1000), Some(id));
        assert_eq!(cache.lookup_iaddr(f.istart), Some(id));
    }

    #[test]
    fn later_install_patches_earlier_exit() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        assert!(matches!(
            cache.fragment(a).insts[1],
            IInst::CallTranslator { vtarget: 0x2000 }
        ));
        let (insts, meta) = mk_insts(0x3000);
        let b = cache.install(0x2000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let b_start = cache.fragment(b).istart;
        assert!(matches!(
            cache.fragment(a).insts[1],
            IInst::Branch { target: ITarget::Addr(addr) } if addr == b_start
        ));
        assert_eq!(cache.patches_applied(), 1);
    }

    #[test]
    fn self_loop_resolves_at_install() {
        let mut cache = TranslationCache::new();
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslatorIfCond {
                cond: CondKind::Ne,
                acc: Acc::new(0),
                src: ASrc::Gpr(Reg::new(1)),
                vtarget: 0x1000, // loops back to itself
            },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let meta = vec![
            IMeta {
                vaddr: 0x1000,
                vcount: 0,
                category: None,
                is_chain: false,
            },
            IMeta::chain(0x1000),
            IMeta::chain(0x1000),
        ];
        let id = cache.install(0x1000, IsaForm::Basic, insts, meta, 1, HashMap::new());
        let istart = cache.fragment(id).istart;
        assert!(matches!(
            cache.fragment(id).insts[1],
            IInst::CondBranch { target: ITarget::Addr(addr), .. } if addr == istart
        ));
    }

    #[test]
    fn pending_dual_ras_push_resolves() {
        let mut cache = TranslationCache::new();
        let insts = vec![IInst::PushDualRas {
            vret: 0x5000,
            iret: ITarget::Addr(DISPATCH_IADDR),
        }];
        let meta = vec![IMeta::chain(0x1000)];
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        // Unresolved: points at dispatch.
        assert!(matches!(
            cache.fragment(a).insts[0],
            IInst::PushDualRas {
                iret: ITarget::Addr(DISPATCH_IADDR),
                ..
            }
        ));
        let (insts, meta) = mk_insts(0x9000);
        let b = cache.install(0x5000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let b_start = cache.fragment(b).istart;
        assert!(matches!(
            cache.fragment(a).insts[0],
            IInst::PushDualRas { iret: ITarget::Addr(addr), .. } if addr == b_start
        ));
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn duplicate_install_rejected() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        cache.install(
            0x1000,
            IsaForm::Modified,
            insts.clone(),
            meta.clone(),
            1,
            HashMap::new(),
        );
        cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
    }

    #[test]
    fn pei_table_lists_peis() {
        let mut cache = TranslationCache::new();
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::Load {
                width: ildp_isa::MemWidth::U64,
                acc: Acc::new(0),
                addr: ASrc::Gpr(Reg::new(2)),
                disp: 0,
                dst: None,
            },
            IInst::Halt,
        ];
        let meta = vec![
            IMeta {
                vaddr: 0x1000,
                vcount: 0,
                category: None,
                is_chain: false,
            },
            IMeta {
                vaddr: 0x1004,
                vcount: 1,
                category: None,
                is_chain: false,
            },
            IMeta {
                vaddr: 0x1008,
                vcount: 1,
                category: None,
                is_chain: false,
            },
        ];
        let id = cache.install(0x1000, IsaForm::Basic, insts, meta, 2, HashMap::new());
        assert_eq!(cache.fragment(id).pei_table(), vec![(1, 0x1004)]);
    }
}
