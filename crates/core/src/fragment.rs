//! Translated fragments and the translation cache.
//!
//! A *fragment* is a translated superblock installed in the code cache
//! (paper §3.1, after [3,4]). The [`TranslationCache`] owns all fragments,
//! assigns their I-ISA code addresses, maintains the V-PC → fragment map
//! (Figure 3's "PC translation lookup table"), and performs **fragment
//! chaining**: when a new fragment is installed, every earlier
//! `call-translator` exit that targets its V-address is patched into a
//! direct branch (paper §3.2).

use crate::classify::UsageCat;
use alpha_isa::Reg;
use ildp_isa::{Acc, IInst, ITarget, IsaForm};
use ildp_uarch::{DynInst, InstClass};
use std::collections::HashMap;

/// Identifier of an installed fragment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FragmentId(pub u32);

/// Per-instruction metadata carried alongside the I-ISA code (the
/// simulation-side analogue of the paper's PEI side tables).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IMeta {
    /// The V-address of the originating V-ISA instruction.
    pub vaddr: u64,
    /// V-ISA instructions retired when this instruction completes.
    pub vcount: u16,
    /// Usage category of the value this instruction produces (for the
    /// Figure 7 statistic), if it is the producing instruction of a
    /// classified value.
    pub category: Option<UsageCat>,
    /// Whether this instruction is fragment-chaining overhead (software
    /// jump prediction, dispatch transfers, RAS pushes).
    pub is_chain: bool,
}

impl IMeta {
    /// Metadata for a chaining-overhead instruction at `vaddr`.
    pub fn chain(vaddr: u64) -> IMeta {
        IMeta {
            vaddr,
            vcount: 0,
            category: None,
            is_chain: true,
        }
    }
}

/// Precise-trap recovery entry: at this PEI, the architected value of
/// `reg` lives in accumulator `acc` (basic-form fragments only).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryEntry {
    /// The architected register.
    pub reg: Reg,
    /// The accumulator holding its value.
    pub acc: Acc,
}

/// A translated superblock installed in the code cache.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// This fragment's id.
    pub id: FragmentId,
    /// The V-address of the first source instruction (embedded in the
    /// leading `SetVpcBase` instruction).
    pub vstart: u64,
    /// The fragment's I-ISA base address in the code cache.
    pub istart: u64,
    /// The translated instructions.
    pub insts: Vec<IInst>,
    /// Parallel per-instruction metadata.
    pub meta: Vec<IMeta>,
    /// Per-instruction I-addresses (cumulative from `istart`).
    pub iaddrs: Vec<u64>,
    /// The ISA form this fragment was translated to.
    pub form: IsaForm,
    /// Number of V-ISA instructions in the source superblock.
    pub src_inst_count: u32,
    /// Per PEI instruction index: accumulator-resident architected values
    /// to merge into the GPR file on a trap (basic form).
    pub recovery: HashMap<u32, Vec<RecoveryEntry>>,
    /// Predecoded per-instruction trace templates: everything about a
    /// [`DynInst`] that is static — PC, size, operand names, class, the
    /// fall-through `next_pc` — computed once at install time so tracing
    /// execution is copy-plus-patch instead of per-retire construction.
    pub templates: Vec<DynInst>,
    /// Per-instruction direct links: for a control transfer whose target
    /// I-address is resolved, the fragment whose entry point it is. Kept in
    /// lockstep with patching so the engine follows links without hashing
    /// through the I-address lookup map. Invalidated wholesale by
    /// [`TranslationCache::flush`] (the fragments are dropped).
    pub links: Vec<Option<FragmentId>>,
    /// Times this fragment has been entered (for statistics).
    pub entries: u64,
    /// Clock-eviction referenced bit: set by the engine on entry, cleared
    /// by the clock hand's first pass ([`TranslationCache::enforce_budget`]).
    pub referenced: bool,
    /// The guest pages (V-address >> [`SMC_PAGE_SHIFT`]) this fragment was
    /// translated from. A guest store into any of them invalidates the
    /// fragment (self-modifying-code detection).
    pub src_pages: Vec<u64>,
    /// Per-instruction exit V-targets, recorded at install time from the
    /// pre-patch instruction stream: `Some(vtarget)` for every patchable
    /// translator exit (`CallTranslator`/`CallTranslatorIfCond`) and every
    /// dual-RAS push (its V-side return address). Patching rewrites the
    /// instruction into a direct branch and discards the embedded
    /// V-address; this table preserves it, so whole-cache analyses can
    /// check that every resolved link lands on the fragment translated
    /// from the V-address the exit was emitted for.
    pub exit_varms: Vec<Option<u64>>,
}

impl Fragment {
    /// Total encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.insts
            .iter()
            .map(|i| i.size_bytes(self.form) as u64)
            .sum()
    }

    /// Indices of PEI instructions with their V-addresses (the PEI table of
    /// paper §2.2).
    pub fn pei_table(&self) -> Vec<(u32, u64)> {
        self.insts
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.is_pei())
            .map(|(i, _)| (i as u32, self.meta[i].vaddr))
            .collect()
    }
}

/// The translation cache: installed fragments, the V-PC lookup map, and
/// pending cross-fragment patches.
///
/// Fragments live in id-indexed slots; precise invalidation (eviction,
/// self-modifying-code detection) empties a slot without renumbering the
/// survivors, so `FragmentId`s are never reused within an epoch.
///
/// # Examples
///
/// ```
/// use ildp_core::TranslationCache;
/// let cache = TranslationCache::new();
/// assert_eq!(cache.lookup(0x1000), None);
/// assert_eq!(cache.fragments().count(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TranslationCache {
    slots: Vec<Option<Fragment>>,
    by_vstart: HashMap<u64, FragmentId>,
    by_istart: HashMap<u64, FragmentId>,
    /// V-target → sites awaiting a fragment at that address.
    pending: HashMap<u64, Vec<(FragmentId, u32)>>,
    /// Reverse direct-link map: target fragment → the (fragment, slot)
    /// sites whose direct link names it. Consulted on invalidation so every
    /// incoming branch and dual-RAS push is un-patched back to a
    /// `call-translator` / dispatch exit. Entries are validated lazily
    /// against the live link table, so stale records are harmless.
    incoming: HashMap<FragmentId, Vec<(FragmentId, u32)>>,
    /// Guest page → fragments translated from code on that page (the SMC
    /// reverse map).
    src_pages: HashMap<u64, Vec<FragmentId>>,
    /// Byte range [watch_lo, watch_hi) covering every watched guest page —
    /// a store outside it cannot hit translated source code, so the hot
    /// path pays one compare instead of a hash probe. Conservative: never
    /// shrinks while fragments remain.
    watch_lo: u64,
    watch_hi: u64,
    /// Code bytes currently installed (live fragments only).
    installed_bytes: u64,
    /// Code bytes ever installed (survives eviction; the paper's static
    /// code-expansion statistic).
    cumulative_bytes: u64,
    /// Live-fragment count.
    live: usize,
    /// Clock-eviction hand (slot index).
    clock_hand: usize,
    next_iaddr: u64,
    patches_applied: u64,
    unpatches: u64,
    invalidations: u64,
    evictions: u64,
    flushes: u64,
    /// Bumped on every flush. I-addresses are never reused, so any cached
    /// reference stamped with an older epoch (an engine dual-RAS entry's
    /// direct link) is known stale without consulting the lookup maps.
    epoch: u64,
}

/// Base I-address of the code cache.
pub const CODE_CACHE_BASE: u64 = 0xF000_0000;

/// The I-address of the shared dispatch code. All `Dispatch` transfers
/// funnel through this address; its terminal indirect jump is what makes
/// the paper's `no_pred` chaining mispredict so badly (one BTB entry for
/// every indirect target in the program).
pub const DISPATCH_IADDR: u64 = 0xEFFF_0000;

/// Number of instructions executed by the shared dispatch sequence
/// (paper §3.2: "The dispatch code takes 20 instructions").
pub const DISPATCH_COST_INSTS: u32 = 20;

/// Guest-page granularity of the self-modifying-code reverse map (4 KiB,
/// matching the memory model's page size).
pub const SMC_PAGE_SHIFT: u64 = 12;

impl TranslationCache {
    /// Creates an empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache {
            next_iaddr: CODE_CACHE_BASE,
            ..TranslationCache::default()
        }
    }

    /// All live (installed, not invalidated) fragments.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> {
        self.slots.iter().flatten()
    }

    /// Number of live fragments.
    pub fn live_fragments(&self) -> usize {
        self.live
    }

    /// The fragment translated from V-address `vaddr`, if any.
    pub fn lookup(&self, vaddr: u64) -> Option<FragmentId> {
        self.by_vstart.get(&vaddr).copied()
    }

    /// The fragment whose I-ISA entry point is `iaddr`.
    pub fn lookup_iaddr(&self, iaddr: u64) -> Option<FragmentId> {
        self.by_istart.get(&iaddr).copied()
    }

    /// Immutable access to a fragment.
    ///
    /// # Panics
    ///
    /// Panics if the fragment has been invalidated; use [`try_fragment`]
    /// when the id may be stale.
    ///
    /// [`try_fragment`]: TranslationCache::try_fragment
    pub fn fragment(&self, id: FragmentId) -> &Fragment {
        self.slots[id.0 as usize]
            .as_ref()
            .expect("fragment was invalidated")
    }

    /// Immutable access to a fragment, `None` if it was invalidated.
    pub fn try_fragment(&self, id: FragmentId) -> Option<&Fragment> {
        self.slots.get(id.0 as usize)?.as_ref()
    }

    /// Mutable access to a fragment (the VM engine updates entry counts).
    ///
    /// # Panics
    ///
    /// Panics if the fragment has been invalidated; use
    /// [`try_fragment_mut`] when the id may be stale.
    ///
    /// [`try_fragment_mut`]: TranslationCache::try_fragment_mut
    pub fn fragment_mut(&mut self, id: FragmentId) -> &mut Fragment {
        self.slots[id.0 as usize]
            .as_mut()
            .expect("fragment was invalidated")
    }

    /// Mutable access to a fragment, `None` if it was invalidated.
    pub fn try_fragment_mut(&mut self, id: FragmentId) -> Option<&mut Fragment> {
        self.slots.get_mut(id.0 as usize)?.as_mut()
    }

    /// Total patches applied so far (chaining statistic).
    pub fn patches_applied(&self) -> u64 {
        self.patches_applied
    }

    /// Sites un-patched back to `call-translator` / dispatch exits by
    /// invalidation.
    pub fn unpatches(&self) -> u64 {
        self.unpatches
    }

    /// Fragments removed by precise invalidation (eviction + SMC).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Fragments removed by capacity eviction specifically.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Times the cache has been flushed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Code bytes currently installed (live fragments only).
    pub fn installed_bytes(&self) -> u64 {
        self.installed_bytes
    }

    /// The current flush epoch. A direct fragment link captured together
    /// with this value stays valid exactly as long as the epoch is
    /// unchanged (fragments are only ever removed by [`flush`], which bumps
    /// it).
    ///
    /// [`flush`]: TranslationCache::flush
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Flushes the translation cache (the Dynamo-style response to a
    /// program phase change — paper §4.1 notes the cost of *not*
    /// occasionally flushing). All fragments, lookup entries and pending
    /// patches are dropped; I-addresses are never reused, so stale
    /// dual-RAS entries simply miss the `lookup_iaddr` map and fall back
    /// to dispatch.
    pub fn flush(&mut self) {
        self.slots.clear();
        self.by_vstart.clear();
        self.by_istart.clear();
        self.pending.clear();
        self.incoming.clear();
        self.src_pages.clear();
        self.watch_lo = 0;
        self.watch_hi = 0;
        self.installed_bytes = 0;
        self.live = 0;
        self.clock_hand = 0;
        self.flushes += 1;
        self.epoch += 1;
    }

    /// Bumps the flush epoch without dropping any fragment. Every engine
    /// dual-RAS direct link stamped with the old epoch turns stale and
    /// falls back to dispatch — a correctness-preserving perturbation used
    /// by the fault-injection harness.
    pub fn force_epoch_bump(&mut self) {
        self.epoch += 1;
    }

    /// Total static code bytes ever installed (cumulative across
    /// evictions, so the paper's code-expansion statistic is not skewed by
    /// cache pressure).
    pub fn total_code_bytes(&self) -> u64 {
        self.cumulative_bytes
    }

    /// Installs a translated fragment: assigns its I-addresses, registers
    /// it in the lookup maps, resolves its own exits against already
    /// installed fragments (including itself), and patches earlier
    /// fragments whose exits target it.
    ///
    /// # Panics
    ///
    /// Panics if a fragment for the same V-start is already installed
    /// (re-translation is not supported; the paper's system likewise keeps
    /// the first fragment formed for an address).
    pub fn install(
        &mut self,
        vstart: u64,
        form: IsaForm,
        insts: Vec<IInst>,
        meta: Vec<IMeta>,
        src_inst_count: u32,
        recovery: HashMap<u32, Vec<RecoveryEntry>>,
    ) -> FragmentId {
        assert_eq!(insts.len(), meta.len(), "metadata must parallel code");
        assert!(
            !self.by_vstart.contains_key(&vstart),
            "fragment for {vstart:#x} already installed"
        );
        let id = FragmentId(self.slots.len() as u32);
        let istart = self.next_iaddr;
        let mut iaddrs = Vec::with_capacity(insts.len());
        let mut addr = istart;
        for inst in &insts {
            iaddrs.push(addr);
            addr += inst.size_bytes(form) as u64;
        }
        self.next_iaddr = (addr + 7) & !7;

        let templates = insts
            .iter()
            .enumerate()
            .map(|(k, inst)| {
                let pc = iaddrs[k];
                let next_pc = iaddrs
                    .get(k + 1)
                    .copied()
                    .unwrap_or(pc + inst.size_bytes(form) as u64);
                build_template(inst, pc, next_pc, &meta[k], form)
            })
            .collect();
        let links = vec![None; insts.len()];
        // Exit V-targets must be captured before `resolve_new_fragment`
        // patches any of this fragment's own exits into direct branches.
        let exit_varms = insts
            .iter()
            .map(|inst| match *inst {
                IInst::PushDualRas { vret, .. } => Some(vret),
                _ => inst.patch_vtarget(),
            })
            .collect();

        // Guest pages holding the source superblock, for the SMC map.
        let mut src_pages: Vec<u64> = meta.iter().map(|m| m.vaddr >> SMC_PAGE_SHIFT).collect();
        src_pages.sort_unstable();
        src_pages.dedup();

        let fragment = Fragment {
            id,
            vstart,
            istart,
            insts,
            meta,
            iaddrs,
            form,
            src_inst_count,
            recovery,
            templates,
            links,
            entries: 0,
            referenced: true,
            src_pages,
            exit_varms,
        };
        let bytes = fragment.size_bytes();
        for &page in &fragment.src_pages {
            self.src_pages.entry(page).or_default().push(id);
            let lo = page << SMC_PAGE_SHIFT;
            let hi = (page + 1) << SMC_PAGE_SHIFT;
            if self.watch_lo == self.watch_hi {
                self.watch_lo = lo;
                self.watch_hi = hi;
            } else {
                self.watch_lo = self.watch_lo.min(lo);
                self.watch_hi = self.watch_hi.max(hi);
            }
        }
        self.installed_bytes += bytes;
        self.cumulative_bytes += bytes;
        self.live += 1;
        self.slots.push(Some(fragment));
        self.by_vstart.insert(vstart, id);
        self.by_istart.insert(istart, id);

        // Resolve this fragment's exits against installed fragments.
        self.resolve_new_fragment(id);
        // Patch earlier call-translator sites that wanted this V-address.
        if let Some(sites) = self.pending.remove(&vstart) {
            for (fid, idx) in sites {
                self.patch_site(fid, idx, istart);
            }
        }
        id
    }

    fn resolve_new_fragment(&mut self, id: FragmentId) {
        let n = self.fragment(id).insts.len();
        for idx in 0..n as u32 {
            let inst = self.fragment(id).insts[idx as usize];
            let vtarget = match inst {
                IInst::CallTranslatorIfCond { vtarget, .. } => Some(vtarget),
                IInst::CallTranslator { vtarget } => Some(vtarget),
                _ => None,
            };
            if let Some(vt) = vtarget {
                match self.by_vstart.get(&vt).copied() {
                    Some(target) => {
                        let istart = self.fragment(target).istart;
                        self.patch_site(id, idx, istart);
                    }
                    None => self.pending.entry(vt).or_default().push((id, idx)),
                }
            }
            // Dual-RAS pushes: resolve the I-side return address when the
            // return-target fragment exists; otherwise leave it pointing at
            // dispatch (correct, just slower) and register for patching.
            if let IInst::PushDualRas { vret, iret } = inst {
                if iret == ITarget::Addr(DISPATCH_IADDR) {
                    match self.by_vstart.get(&vret).copied() {
                        Some(target) => {
                            let istart = self.fragment(target).istart;
                            self.fragment_mut(id).insts[idx as usize] = IInst::PushDualRas {
                                vret,
                                iret: ITarget::Addr(istart),
                            };
                            self.refresh_site(id, idx);
                        }
                        None => self.pending.entry(vret).or_default().push((id, idx)),
                    }
                }
            }
        }
    }

    /// Rewrites a `call-translator` site into a direct branch to `istart`
    /// (the paper's "patch"), or resolves a pending dual-RAS push. Sites in
    /// fragments that have since been invalidated, and sites that are no
    /// longer in patchable form (the invalidation un-patch re-registered a
    /// stale pending record), are skipped.
    fn patch_site(&mut self, fid: FragmentId, idx: u32, istart: u64) {
        let Some(f) = self.try_fragment_mut(fid) else {
            return;
        };
        let inst = &mut f.insts[idx as usize];
        *inst = match *inst {
            IInst::CallTranslatorIfCond { cond, acc, src, .. } => IInst::CondBranch {
                cond,
                acc,
                src,
                target: ITarget::Addr(istart),
            },
            IInst::CallTranslator { .. } => IInst::Branch {
                target: ITarget::Addr(istart),
            },
            IInst::PushDualRas { vret, iret } if iret == ITarget::Addr(DISPATCH_IADDR) => {
                IInst::PushDualRas {
                    vret,
                    iret: ITarget::Addr(istart),
                }
            }
            _ => return,
        };
        self.patches_applied += 1;
        self.refresh_site(fid, idx);
    }

    /// Recomputes the trace template and direct link of one instruction
    /// from its (just rewritten) form, keeping both in lockstep with
    /// patching, and records the link in the reverse incoming-link map.
    fn refresh_site(&mut self, fid: FragmentId, idx: u32) {
        let Some(f) = self.try_fragment(fid) else {
            return;
        };
        let k = idx as usize;
        let inst = f.insts[k];
        let pc = f.iaddrs[k];
        let next_pc = f
            .iaddrs
            .get(k + 1)
            .copied()
            .unwrap_or(pc + inst.size_bytes(f.form) as u64);
        let m = f.meta[k];
        let template = build_template(&inst, pc, next_pc, &m, f.form);
        let link = self.link_of(&inst);
        if let Some(target) = link {
            self.incoming.entry(target).or_default().push((fid, idx));
        }
        let f = self.fragment_mut(fid);
        f.templates[k] = template;
        f.links[k] = link;
    }

    /// Precisely invalidates one fragment: empties its slot, removes it
    /// from every lookup map, and un-patches each incoming direct link and
    /// resolved dual-RAS push back to its pre-chaining form (the exits
    /// re-register as pending, so a re-translation re-chains them).
    /// Returns the fragment's entry V-address, or `None` if the id was
    /// already dead.
    ///
    /// The caller owns the engine-side cleanup
    /// ([`Engine::unlink_fragment`](crate::Engine::unlink_fragment)) — the
    /// cache cannot reach the dual RAS.
    pub fn invalidate(&mut self, id: FragmentId) -> Option<u64> {
        let frag = self.slots.get_mut(id.0 as usize)?.take()?;
        self.live -= 1;
        self.installed_bytes -= frag.size_bytes();
        self.by_vstart.remove(&frag.vstart);
        self.by_istart.remove(&frag.istart);
        for page in &frag.src_pages {
            if let Some(ids) = self.src_pages.get_mut(page) {
                ids.retain(|&f| f != id);
                if ids.is_empty() {
                    self.src_pages.remove(page);
                }
            }
        }
        if self.src_pages.is_empty() {
            self.watch_lo = 0;
            self.watch_hi = 0;
        }
        // Drop pending records registered by the dead fragment's own exits.
        for sites in self.pending.values_mut() {
            sites.retain(|&(fid, _)| fid != id);
        }
        self.pending.retain(|_, sites| !sites.is_empty());
        if let Some(sites) = self.incoming.remove(&id) {
            for (fid, idx) in sites {
                if fid != id {
                    self.unpatch_site(fid, idx, id, frag.vstart);
                }
            }
        }
        self.invalidations += 1;
        Some(frag.vstart)
    }

    /// Reverts one direct-linked site back to its slow-path form after its
    /// target `dead` was invalidated: direct branches become
    /// `call-translator` exits (re-registered as pending on the dead
    /// fragment's V-address), resolved dual-RAS pushes fall back to the
    /// dispatcher. Stale incoming records — the site was itself re-patched
    /// or invalidated since — are detected via the lockstep link table and
    /// skipped.
    fn unpatch_site(&mut self, fid: FragmentId, idx: u32, dead: FragmentId, dead_vstart: u64) {
        let k = idx as usize;
        let Some(f) = self.try_fragment_mut(fid) else {
            return;
        };
        if f.links.get(k).copied().flatten() != Some(dead) {
            return;
        }
        let pending_key;
        f.insts[k] = match f.insts[k] {
            IInst::CondBranch { cond, acc, src, .. } => {
                pending_key = dead_vstart;
                IInst::CallTranslatorIfCond {
                    cond,
                    acc,
                    src,
                    vtarget: dead_vstart,
                }
            }
            IInst::Branch { .. } => {
                pending_key = dead_vstart;
                IInst::CallTranslator {
                    vtarget: dead_vstart,
                }
            }
            IInst::PushDualRas { vret, .. } => {
                pending_key = vret;
                IInst::PushDualRas {
                    vret,
                    iret: ITarget::Addr(DISPATCH_IADDR),
                }
            }
            _ => return,
        };
        self.unpatches += 1;
        self.refresh_site(fid, idx);
        self.pending
            .entry(pending_key)
            .or_default()
            .push((fid, idx));
    }

    /// The fragment a resolved control-transfer target lands in, if the
    /// target I-address is a fragment entry point. `DISPATCH_IADDR` and
    /// unresolved targets yield `None`.
    fn link_of(&self, inst: &IInst) -> Option<FragmentId> {
        let addr = match *inst {
            IInst::CondBranch {
                target: ITarget::Addr(a),
                ..
            } => a,
            IInst::Branch {
                target: ITarget::Addr(a),
            } => a,
            IInst::PushDualRas {
                iret: ITarget::Addr(a),
                ..
            } => a,
            _ => return None,
        };
        if addr == DISPATCH_IADDR {
            return None;
        }
        self.by_istart.get(&addr).copied()
    }

    /// Evicts cold fragments until installed code fits in `budget` bytes,
    /// using the clock (second-chance) algorithm over the referenced bits
    /// the engine sets on fragment entry. `protect` — normally the fragment
    /// just installed — is never evicted, so a single fragment larger than
    /// the budget degrades to a one-fragment cache rather than a livelock.
    ///
    /// Returns the `(id, vstart)` of every evicted fragment; the caller
    /// must unlink each id from the engine's dual RAS and reset its
    /// profile counter so the address can re-heat.
    pub fn enforce_budget(&mut self, budget: u64, protect: FragmentId) -> Vec<(FragmentId, u64)> {
        let mut evicted = Vec::new();
        let n = self.slots.len();
        if n == 0 {
            return evicted;
        }
        // Two full sweeps per eviction bound the scan: the first clears
        // referenced bits, the second must find a victim.
        let mut scanned = 0usize;
        while self.installed_bytes > budget && self.live > 1 && scanned <= 2 * n {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            scanned += 1;
            let Some(f) = self.slots[idx].as_mut() else {
                continue;
            };
            if f.id == protect {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            let id = f.id;
            if let Some(vstart) = self.invalidate(id) {
                evicted.push((id, vstart));
                self.evictions += 1;
                scanned = 0;
            }
        }
        evicted
    }

    /// Whether a guest store of `len` bytes at `addr` touches a page
    /// holding translated source code. One range compare on the miss path;
    /// only stores inside the watched range pay the page-map probe.
    #[inline]
    pub fn smc_hit(&self, addr: u64, len: u64) -> bool {
        if addr >= self.watch_hi || addr.saturating_add(len) <= self.watch_lo {
            return false;
        }
        let first = addr >> SMC_PAGE_SHIFT;
        let last = addr.saturating_add(len.saturating_sub(1)) >> SMC_PAGE_SHIFT;
        (first..=last).any(|p| self.src_pages.contains_key(&p))
    }

    /// Every fragment whose source code shares a page with the written
    /// range — the victims of one SMC store.
    pub fn fragments_on_write(&self, addr: u64, len: u64) -> Vec<FragmentId> {
        let first = addr >> SMC_PAGE_SHIFT;
        let last = addr.saturating_add(len.saturating_sub(1)) >> SMC_PAGE_SHIFT;
        let mut out = Vec::new();
        for p in first..=last {
            if let Some(ids) = self.src_pages.get(&p) {
                for &id in ids {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }
}

/// Builds the static part of an instruction's retire record: operand
/// names, accumulator usage, class, and every field whose value does not
/// depend on runtime state. The engine copies this template and patches
/// only the dynamic fields (`taken`, `mem_addr`, `v_target`, taken-branch
/// `next_pc`) at retire time.
fn build_template(inst: &IInst, pc: u64, next_pc: u64, meta: &IMeta, form: IsaForm) -> DynInst {
    let mut d = DynInst::alu(pc, inst.size_bytes(form) as u8);
    d.is_chain = meta.is_chain;
    let reads = inst.gpr_reads();
    d.srcs = [
        reads[0].map(|r| r.number()),
        reads[1].map(|r| r.number()),
        None,
    ];
    d.dst = inst.gpr_write().map(|r| r.number());
    let uses_acc = inst.reads_acc() || inst.writes_acc();
    d.acc = if uses_acc {
        inst.acc().map(|a| a.number())
    } else {
        None
    };
    d.acc_read = inst.reads_acc();
    d.acc_write = inst.writes_acc();
    d.next_pc = next_pc;
    d.vcount = meta.vcount;
    match *inst {
        IInst::Op { op, .. } if op.is_multiply() => d.class = InstClass::IntMul,
        IInst::Load { .. } => d.class = InstClass::Load,
        IInst::Store { .. } => d.class = InstClass::Store,
        IInst::CondBranch { .. } | IInst::CallTranslatorIfCond { .. } => {
            d.class = InstClass::CondBranch;
        }
        IInst::Branch { target } => {
            d.class = InstClass::Branch;
            d.taken = true;
            if let ITarget::Addr(a) = target {
                d.next_pc = a;
            }
        }
        IInst::IndirectJump { .. } => d.class = InstClass::Return,
        IInst::PushDualRas { vret, iret } => {
            d.class = InstClass::DualRasPush;
            if let ITarget::Addr(i) = iret {
                d.ras_pair = Some((vret, i));
            }
        }
        IInst::CallTranslator { .. } | IInst::Dispatch { .. } => {
            d.class = InstClass::Branch;
            d.taken = true;
            d.next_pc = DISPATCH_IADDR;
        }
        _ => {}
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use ildp_isa::{ASrc, CondKind};

    fn mk_insts(exit_vtarget: u64) -> (Vec<IInst>, Vec<IMeta>) {
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslator {
                vtarget: exit_vtarget,
            },
        ];
        let meta = vec![
            IMeta {
                vaddr: 0x1000,
                vcount: 0,
                category: None,
                is_chain: false,
            },
            IMeta::chain(0x1000),
        ];
        (insts, meta)
    }

    #[test]
    fn install_assigns_addresses_and_maps() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let id = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let f = cache.fragment(id);
        assert_eq!(f.istart, CODE_CACHE_BASE);
        assert_eq!(f.iaddrs[0], CODE_CACHE_BASE);
        assert!(f.iaddrs[1] > f.iaddrs[0]);
        assert_eq!(cache.lookup(0x1000), Some(id));
        assert_eq!(cache.lookup_iaddr(f.istart), Some(id));
    }

    #[test]
    fn later_install_patches_earlier_exit() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        assert!(matches!(
            cache.fragment(a).insts[1],
            IInst::CallTranslator { vtarget: 0x2000 }
        ));
        let (insts, meta) = mk_insts(0x3000);
        let b = cache.install(0x2000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let b_start = cache.fragment(b).istart;
        assert!(matches!(
            cache.fragment(a).insts[1],
            IInst::Branch { target: ITarget::Addr(addr) } if addr == b_start
        ));
        assert_eq!(cache.patches_applied(), 1);
    }

    #[test]
    fn self_loop_resolves_at_install() {
        let mut cache = TranslationCache::new();
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::CallTranslatorIfCond {
                cond: CondKind::Ne,
                acc: Acc::new(0),
                src: ASrc::Gpr(Reg::new(1)),
                vtarget: 0x1000, // loops back to itself
            },
            IInst::CallTranslator { vtarget: 0x2000 },
        ];
        let meta = vec![
            IMeta {
                vaddr: 0x1000,
                vcount: 0,
                category: None,
                is_chain: false,
            },
            IMeta::chain(0x1000),
            IMeta::chain(0x1000),
        ];
        let id = cache.install(0x1000, IsaForm::Basic, insts, meta, 1, HashMap::new());
        let istart = cache.fragment(id).istart;
        assert!(matches!(
            cache.fragment(id).insts[1],
            IInst::CondBranch { target: ITarget::Addr(addr), .. } if addr == istart
        ));
    }

    #[test]
    fn pending_dual_ras_push_resolves() {
        let mut cache = TranslationCache::new();
        let insts = vec![IInst::PushDualRas {
            vret: 0x5000,
            iret: ITarget::Addr(DISPATCH_IADDR),
        }];
        let meta = vec![IMeta::chain(0x1000)];
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        // Unresolved: points at dispatch.
        assert!(matches!(
            cache.fragment(a).insts[0],
            IInst::PushDualRas {
                iret: ITarget::Addr(DISPATCH_IADDR),
                ..
            }
        ));
        let (insts, meta) = mk_insts(0x9000);
        let b = cache.install(0x5000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let b_start = cache.fragment(b).istart;
        assert!(matches!(
            cache.fragment(a).insts[0],
            IInst::PushDualRas { iret: ITarget::Addr(addr), .. } if addr == b_start
        ));
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn duplicate_install_rejected() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        cache.install(
            0x1000,
            IsaForm::Modified,
            insts.clone(),
            meta.clone(),
            1,
            HashMap::new(),
        );
        cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
    }

    #[test]
    fn pei_table_lists_peis() {
        let mut cache = TranslationCache::new();
        let insts = vec![
            IInst::SetVpcBase { vaddr: 0x1000 },
            IInst::Load {
                width: ildp_isa::MemWidth::U64,
                acc: Acc::new(0),
                addr: ASrc::Gpr(Reg::new(2)),
                disp: 0,
                dst: None,
            },
            IInst::Halt,
        ];
        let meta = vec![
            IMeta {
                vaddr: 0x1000,
                vcount: 0,
                category: None,
                is_chain: false,
            },
            IMeta {
                vaddr: 0x1004,
                vcount: 1,
                category: None,
                is_chain: false,
            },
            IMeta {
                vaddr: 0x1008,
                vcount: 1,
                category: None,
                is_chain: false,
            },
        ];
        let id = cache.install(0x1000, IsaForm::Basic, insts, meta, 2, HashMap::new());
        assert_eq!(cache.fragment(id).pei_table(), vec![(1, 0x1004)]);
    }

    #[test]
    fn invalidate_unpatches_incoming_links() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let (insts, meta) = mk_insts(0x3000);
        let b = cache.install(0x2000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        // A's exit is now a direct branch into B.
        assert!(matches!(cache.fragment(a).insts[1], IInst::Branch { .. }));
        assert_eq!(cache.invalidate(b), Some(0x2000));
        // The site reverts to a call-translator for B's V-start, with the
        // link severed and the pending record restored.
        assert!(matches!(
            cache.fragment(a).insts[1],
            IInst::CallTranslator { vtarget: 0x2000 }
        ));
        assert_eq!(cache.fragment(a).links[1], None);
        assert_eq!(cache.lookup(0x2000), None);
        assert!(cache.try_fragment(b).is_none());
        assert_eq!(cache.unpatches(), 1);
        assert_eq!(cache.invalidations(), 1);
        // Re-installing B's region re-patches A via the restored pending
        // record.
        let (insts, meta) = mk_insts(0x3000);
        let b2 = cache.install(0x2000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let b2_start = cache.fragment(b2).istart;
        assert!(matches!(
            cache.fragment(a).insts[1],
            IInst::Branch { target: ITarget::Addr(addr) } if addr == b2_start
        ));
    }

    #[test]
    fn invalidate_is_idempotent_and_tracks_bytes() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let bytes = cache.installed_bytes();
        assert!(bytes > 0);
        let total = cache.total_code_bytes();
        assert_eq!(cache.invalidate(a), Some(0x1000));
        assert_eq!(cache.installed_bytes(), 0);
        // Cumulative static-code accounting is unaffected by eviction.
        assert_eq!(cache.total_code_bytes(), total);
        assert_eq!(cache.invalidate(a), None);
        assert_eq!(cache.fragments().count(), 0);
    }

    #[test]
    fn enforce_budget_evicts_cold_first() {
        let mut cache = TranslationCache::new();
        let mut ids = Vec::new();
        for k in 0..4u64 {
            let (insts, meta) = mk_insts(0x9000 + k * 0x100);
            ids.push(cache.install(
                0x1000 + k * 0x100,
                IsaForm::Modified,
                insts,
                meta,
                1,
                HashMap::new(),
            ));
        }
        // Mark fragment 1 as recently entered; clear the rest (install
        // sets the referenced bit, modelling a just-used fragment).
        for (k, &id) in ids.iter().enumerate() {
            cache.fragment_mut(id).referenced = k == 1;
        }
        let per_frag = cache.installed_bytes() / 4;
        // Budget for two fragments; protect the most recent install.
        let evicted = cache.enforce_budget(2 * per_frag, ids[3]);
        assert_eq!(evicted.len(), 2);
        let gone: Vec<FragmentId> = evicted.iter().map(|&(id, _)| id).collect();
        // The protected fragment and the referenced one survive.
        assert!(!gone.contains(&ids[3]));
        assert!(cache.try_fragment(ids[1]).is_some());
        assert!(cache.try_fragment(ids[3]).is_some());
        assert_eq!(cache.evictions(), 2);
        assert!(cache.installed_bytes() <= 2 * per_frag);
    }

    #[test]
    fn enforce_budget_never_evicts_last_fragment() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        // Budget of zero still keeps one live fragment (the one running).
        assert!(cache.enforce_budget(0, a).is_empty());
        assert!(cache.try_fragment(a).is_some());
    }

    #[test]
    fn smc_maps_track_source_pages() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        let a = cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        // Source vaddr 0x1000 lives on page 0x1.
        assert!(cache.smc_hit(0x1000, 8));
        assert!(cache.smc_hit(0x1ff8, 8));
        assert!(!cache.smc_hit(0x2000, 8), "next page is not watched");
        assert!(!cache.smc_hit(0x0ff0, 8), "prior page is not watched");
        assert!(
            cache.smc_hit(0x0fff, 2),
            "write straddling into the page hits"
        );
        assert_eq!(cache.fragments_on_write(0x1080, 4), vec![a]);
        assert!(cache.fragments_on_write(0x8000, 4).is_empty());
        cache.invalidate(a);
        // Invalidation unwatches the page: no livelock on re-execution.
        assert!(!cache.smc_hit(0x1000, 8));
        assert!(cache.fragments_on_write(0x1000, 8).is_empty());
    }

    #[test]
    fn force_epoch_bump_keeps_fragments() {
        let mut cache = TranslationCache::new();
        let (insts, meta) = mk_insts(0x2000);
        cache.install(0x1000, IsaForm::Modified, insts, meta, 1, HashMap::new());
        let e = cache.epoch();
        cache.force_epoch_bump();
        assert_eq!(cache.epoch(), e + 1);
        assert_eq!(cache.fragments().count(), 1);
    }
}
