//! Translation-overhead cost model (paper §4.2).
//!
//! The paper measures its DBT at an average of **1,125 Alpha instructions
//! executed per translated Alpha instruction** (Table 2, last column) —
//! about a quarter of DAISY's 4,000+ — and notes that roughly 20% of that
//! is spent copying translated-instruction structures into the translation
//! cache field by field.
//!
//! We reproduce the *accounting*: each translation phase is charged a
//! per-source-instruction or per-emitted-instruction cost, calibrated so a
//! typical superblock lands near the paper's average, with variance across
//! benchmarks arising (as in the paper) from each benchmark's emitted/
//! source expansion ratio and fragment sizes.

/// Per-phase instruction cost constants.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Dependence/usage identification + classification, per source
    /// instruction.
    pub classify_per_src: u64,
    /// Strand formation + accumulator assignment, per source instruction.
    pub strands_per_src: u64,
    /// Code emission, per emitted I-ISA instruction.
    pub emit_per_inst: u64,
    /// Translation-cache installation and chaining/patching, per fragment.
    pub install_per_fragment: u64,
    /// The fraction (in percent) of the subtotal spent copying high-level
    /// structures into the translation cache (paper: ~20%).
    pub struct_copy_pct: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            classify_per_src: 340,
            strands_per_src: 180,
            emit_per_inst: 230,
            install_per_fragment: 900,
            struct_copy_pct: 25, // 25% of subtotal == 20% of the total
        }
    }
}

impl CostModel {
    /// DBT instructions charged for translating one superblock of
    /// `src_insts` source instructions into `emitted_insts` I-ISA
    /// instructions.
    pub fn fragment_cost(&self, src_insts: u64, emitted_insts: u64) -> u64 {
        let subtotal = self.classify_per_src * src_insts
            + self.strands_per_src * src_insts
            + self.emit_per_inst * emitted_insts
            + self.install_per_fragment;
        subtotal + subtotal * self.struct_copy_pct / 100
    }

    /// Instructions charged per interpreted instruction (paper §4.1:
    /// "each interpretation takes about 20 instructions").
    pub fn interp_cost_per_inst(&self) -> u64 {
        20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_fragment_lands_near_paper_average() {
        let m = CostModel::default();
        // A typical hot superblock: ~25 source instructions expanding ~1.4x.
        let cost = m.fragment_cost(25, 35);
        let per_src = cost as f64 / 25.0;
        assert!(
            (800.0..1500.0).contains(&per_src),
            "per-source cost {per_src} out of the paper's range"
        );
    }

    #[test]
    fn struct_copy_share_is_about_twenty_percent_of_total() {
        let m = CostModel::default();
        let total = m.fragment_cost(100, 140) as f64;
        let without = CostModel {
            struct_copy_pct: 0,
            ..m
        }
        .fragment_cost(100, 140) as f64;
        let share = (total - without) / total;
        assert!((0.15..0.25).contains(&share), "copy share {share}");
    }

    #[test]
    fn cost_scales_with_expansion() {
        let m = CostModel::default();
        assert!(m.fragment_cost(50, 100) > m.fragment_cost(50, 60));
    }
}
