//! The co-designed virtual machine run loop (paper §4.1).
//!
//! Orchestrates the three modes: **interpret** (with candidate profiling),
//! **translate** (superblock collection → strand translation → fragment
//! installation and patching), and **execute** (the [`Engine`] running
//! translated code, streaming the retired-instruction trace into a timing
//! model). Matches the paper's simulation methodology: detailed timing is
//! collected for translated (and chained) code only, and the overall
//! performance metric is V-ISA instructions per cycle over that trace.

use crate::classify::CategoryCounts;
use crate::cost::CostModel;
use crate::engine::{Engine, EngineConfig, FragExit, TraceSink};
use crate::fragment::TranslationCache;
use crate::profile::{
    collect_superblock_with_output, interp_step, Candidates, InterpEvent, ProfileConfig,
};
use crate::translate::Translator;
use alpha_isa::{CpuState, DecodeCache, Memory, Program, Trap};
use ildp_uarch::{DynInst, InstClass};

/// Dynamo-style phase-change flushing (paper §4.1, after Dynamo): when
/// fragment formation accelerates abruptly — the signature of a program
/// phase change — the whole translation cache is flushed so the new
/// phase's code gets freshly formed fragments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlushPolicy {
    /// Window length, in V-ISA instructions executed.
    pub window: u64,
    /// Fragments created within one window that trigger a flush.
    pub max_new_fragments: u32,
}

impl Default for FlushPolicy {
    fn default() -> FlushPolicy {
        FlushPolicy {
            window: 200_000,
            max_new_fragments: 64,
        }
    }
}

/// One translation, presented to an [`InstallValidator`] before it is
/// installed in the translation cache.
#[derive(Debug)]
pub struct InstallReview<'a> {
    /// The collected source superblock.
    pub sb: &'a crate::Superblock,
    /// The emitted translation (code, metadata, recovery tables, and the
    /// analysis trace behind them).
    pub code: &'a crate::TranslatedCode,
    /// The translator configuration that produced it.
    pub translator: &'a Translator,
}

/// Install-time translation validation hook.
///
/// A plain function pointer (not a closure) so [`VmConfig`] stays `Copy`;
/// `Err` carries a human-readable diagnostic. The `ildp-verifier` crate
/// provides implementations running its static-analysis passes.
pub type InstallValidator = fn(&InstallReview<'_>) -> Result<(), String>;

/// What the VM does when the install validator rejects a translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OnViolation {
    /// Panic with the diagnostic — a rejected translation is a translator
    /// bug, and tests want to fail loudly.
    #[default]
    Panic,
    /// Refuse the installation and keep interpreting that code
    /// (`reject-on-violation` mode): the fragment never enters the cache,
    /// and [`VmStats::verify_rejected`] counts the refusal.
    Reject,
}

/// VM configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmConfig {
    /// Translator settings (ISA form, chaining policy, accumulators).
    pub translator: Translator,
    /// Profiling thresholds.
    pub profile: ProfileConfig,
    /// Engine settings.
    pub engine: EngineConfig,
    /// Translation-overhead cost model.
    pub cost: CostModel,
    /// Optional phase-change cache flushing (off by default, matching the
    /// paper's evaluated configuration).
    pub flush: Option<FlushPolicy>,
    /// Optional install-time translation validator.
    pub validator: Option<InstallValidator>,
    /// Response to validator rejections.
    pub on_violation: OnViolation,
}

/// Why a VM run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmExit {
    /// The guest program halted.
    Halted,
    /// A precise trap was delivered.
    Trapped {
        /// Faulting V-address.
        vaddr: u64,
        /// The condition.
        trap: Trap,
        /// Recovered architected register state.
        state: Box<[u64; 32]>,
    },
    /// The instruction budget was exhausted.
    Budget,
}

/// Aggregate statistics of a VM run (feeding Table 2, Figure 7 and the
/// §4.2 overhead numbers).
#[derive(Clone, Debug, Default)]
pub struct VmStats {
    /// Instructions interpreted (cold code).
    pub interpreted: u64,
    /// Fragments translated.
    pub fragments: u64,
    /// Source V-ISA instructions translated (static).
    pub translated_src_insts: u64,
    /// I-ISA instructions emitted (static).
    pub emitted_insts: u64,
    /// Static copy instructions emitted.
    pub static_copies: u64,
    /// Strands formed / prematurely terminated.
    pub strands: u64,
    /// Premature strand terminations.
    pub terminations: u64,
    /// Static translated code bytes installed in the cache.
    pub translated_code_bytes: u64,
    /// Modelled DBT overhead in Alpha instructions (§4.2).
    pub translation_overhead: u64,
    /// Modelled interpretation overhead in Alpha instructions.
    pub interpretation_overhead: u64,
    /// Translation-cache flushes performed (phase-change policy).
    pub cache_flushes: u64,
    /// Fragments checked by the install validator.
    pub fragments_verified: u64,
    /// Wall time spent in the install validator, in nanoseconds.
    pub verify_nanos: u64,
    /// Translations refused under [`OnViolation::Reject`].
    pub verify_rejected: u64,
    /// Dynamic engine statistics.
    pub engine: crate::engine::EngineStats,
    /// Static usage-category counts across all translations.
    pub static_categories: CategoryCounts,
    /// Static oracle-boundary category counts (paper's [28] comparison).
    pub oracle_categories: CategoryCounts,
}

impl VmStats {
    /// Dynamic I-ISA instructions per retired V-ISA instruction
    /// (Table 2: "relative number of dynamic instructions"; paper
    /// averages: basic 1.60, modified 1.36).
    pub fn dynamic_expansion(&self) -> f64 {
        if self.engine.v_insts == 0 {
            0.0
        } else {
            self.engine.executed as f64 / self.engine.v_insts as f64
        }
    }

    /// Percentage of executed instructions that are copies (Table 2;
    /// paper averages: basic 17.7%, modified 3.1%).
    pub fn copy_pct(&self) -> f64 {
        if self.engine.executed == 0 {
            0.0
        } else {
            self.engine.copies_executed as f64 * 100.0 / self.engine.executed as f64
        }
    }

    /// Translated static code bytes relative to the source code bytes
    /// (Table 2: "relative number of static instruction bytes"; paper
    /// averages: basic 1.17, modified 1.07).
    pub fn static_code_ratio(&self) -> f64 {
        if self.translated_src_insts == 0 {
            0.0
        } else {
            self.translated_code_bytes as f64 / (4.0 * self.translated_src_insts as f64)
        }
    }

    /// DBT instructions per translated source instruction (§4.2; paper
    /// average ≈ 1,125).
    pub fn overhead_per_translated_inst(&self) -> f64 {
        if self.translated_src_insts == 0 {
            0.0
        } else {
            self.translation_overhead as f64 / self.translated_src_insts as f64
        }
    }
}

/// The co-designed VM. See the module documentation.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Assembler, Reg};
/// use ildp_core::{NullSink, Vm, VmConfig, VmExit};
///
/// let mut asm = Assembler::new(0x1_0000);
/// asm.lda_imm(Reg::A0, 200);
/// let top = asm.here("top");
/// asm.subq_imm(Reg::A0, 1, Reg::A0);
/// asm.bne(Reg::A0, top);
/// asm.halt();
/// let program = asm.finish()?;
///
/// let mut vm = Vm::new(VmConfig::default(), &program);
/// let exit = vm.run(10_000, &mut NullSink);
/// assert_eq!(exit, VmExit::Halted);
/// assert!(vm.stats().fragments > 0, "the loop must get translated");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Vm<'p> {
    config: VmConfig,
    program: &'p Program,
    /// Predecoded code segment driving the interpreter's fetches.
    decoded: DecodeCache,
    cpu: CpuState,
    mem: Memory,
    candidates: Candidates,
    cache: TranslationCache,
    engine: Engine,
    stats: VmStats,
    /// V-inst timestamps of recent fragment creations (flush policy).
    recent_fragments: Vec<u64>,
    /// Console bytes in emission order (interpreted + translated).
    output: Vec<u8>,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the program loaded and the PC at its entry.
    pub fn new(config: VmConfig, program: &'p Program) -> Vm<'p> {
        let (cpu, mem) = program.load();
        Vm {
            config,
            program,
            decoded: DecodeCache::new(program),
            cpu,
            mem,
            candidates: Candidates::new(),
            cache: TranslationCache::new(),
            engine: Engine::new(config.engine),
            stats: VmStats::default(),
            recent_fragments: Vec::new(),
            output: Vec::new(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// The translation cache (inspection).
    pub fn cache(&self) -> &TranslationCache {
        &self.cache
    }

    /// The architected CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// Console output produced so far (interpreted + translated), in
    /// emission order.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Total V-ISA instructions executed so far (interpreted or
    /// translated).
    pub fn v_instructions(&self) -> u64 {
        self.stats.interpreted + self.engine.stats.v_insts
    }

    fn translate_at(&mut self, vaddr: u64) -> bool {
        debug_assert_eq!(self.cpu.pc, vaddr);
        if self.cache.lookup(vaddr).is_some() {
            return true;
        }
        match collect_superblock_with_output(
            &mut self.cpu,
            &mut self.mem,
            self.program,
            &self.config.profile,
            &mut self.output,
        ) {
            Ok(sb) if !sb.is_empty() => {
                self.maybe_flush();
                let out = self.config.translator.translate(&sb);
                if let Some(validator) = self.config.validator {
                    let review = InstallReview {
                        sb: &sb,
                        code: &out,
                        translator: &self.config.translator,
                    };
                    let t0 = std::time::Instant::now();
                    let verdict = validator(&review);
                    // Verifier time is accounted separately from the
                    // paper's translation-overhead model: it is a
                    // debugging aid, not part of the modeled DBT cost.
                    self.stats.verify_nanos += t0.elapsed().as_nanos() as u64;
                    self.stats.fragments_verified += 1;
                    if let Err(msg) = verdict {
                        match self.config.on_violation {
                            OnViolation::Panic => panic!(
                                "translation validator rejected fragment at \
                                 {:#x}: {msg}",
                                out.vstart
                            ),
                            OnViolation::Reject => {
                                self.stats.verify_rejected += 1;
                                // Collection still executed the path once.
                                self.stats.interpreted += out.src_inst_count as u64;
                                return false;
                            }
                        }
                    }
                }
                self.stats.fragments += 1;
                self.stats.translated_src_insts += out.src_inst_count as u64;
                self.stats.emitted_insts += out.insts.len() as u64;
                self.stats.static_copies += out.stats.copies as u64;
                self.stats.strands += out.stats.strands as u64;
                self.stats.terminations += out.stats.terminations as u64;
                self.stats.static_categories.merge(&out.stats.categories);
                self.stats
                    .oracle_categories
                    .merge(&out.stats.oracle_categories);
                self.stats.translation_overhead += self
                    .config
                    .cost
                    .fragment_cost(out.src_inst_count as u64, out.insts.len() as u64);
                // Collection executed the path once: count it as
                // interpreted work (the paper's collection runs during
                // interpretation).
                self.stats.interpreted += out.src_inst_count as u64;
                self.cache.install(
                    out.vstart,
                    self.config.translator.form,
                    out.insts,
                    out.meta,
                    out.src_inst_count,
                    out.recovery,
                );
                true
            }
            Ok(_) => false,
            Err((pc, _trap)) => {
                // Trap during collection: abandon the superblock; the trap
                // will be re-raised by ordinary interpretation.
                self.cpu.pc = pc;
                false
            }
        }
    }

    /// Runs until halt, trap, or `budget` V-ISA instructions.
    ///
    /// Monomorphized over the sink (see [`TraceSink::TRACING`]): running
    /// with [`crate::NullSink`] compiles the trace machinery out of the
    /// engine's hot loop.
    pub fn run<S: TraceSink>(&mut self, budget: u64, sink: &mut S) -> VmExit {
        loop {
            if self.v_instructions() >= budget {
                self.finish_overheads();
                return VmExit::Budget;
            }
            // Execute translated code when the current PC has a fragment.
            if let Some(fid) = self.cache.lookup(self.cpu.pc) {
                let engine_budget = budget.saturating_sub(self.stats.interpreted);
                let engine_exit = self.engine.run(
                    &mut self.cache,
                    fid,
                    &mut self.cpu,
                    &mut self.mem,
                    engine_budget,
                    sink,
                );
                self.output.append(&mut self.engine.output);
                match engine_exit {
                    FragExit::NotTranslated { vtarget } => {
                        self.cpu.pc = vtarget;
                        // Fragment exit targets are superblock start
                        // candidates (paper §3.1).
                        if self.candidates.bump(vtarget, self.config.profile.threshold) {
                            self.translate_at(vtarget);
                        }
                    }
                    FragExit::Halt => {
                        self.finish_overheads();
                        return VmExit::Halted;
                    }
                    FragExit::Budget => {
                        self.finish_overheads();
                        return VmExit::Budget;
                    }
                    FragExit::Trap { vaddr, trap, state } => {
                        self.finish_overheads();
                        return VmExit::Trapped { vaddr, trap, state };
                    }
                }
                continue;
            }
            // Otherwise interpret one instruction.
            match interp_step(
                &mut self.cpu,
                &mut self.mem,
                &self.decoded,
                &mut self.candidates,
                &self.config.profile,
                &mut self.stats.interpreted,
                &mut self.output,
            ) {
                InterpEvent::Continue => {}
                InterpEvent::Halted => {
                    self.finish_overheads();
                    return VmExit::Halted;
                }
                InterpEvent::Hot { vaddr } => {
                    self.translate_at(vaddr);
                }
                InterpEvent::Trapped { vaddr, trap } => {
                    self.finish_overheads();
                    return VmExit::Trapped {
                        vaddr,
                        trap,
                        state: Box::new(self.cpu.registers()),
                    };
                }
            }
        }
    }

    /// Dynamo-style phase detection: flush when fragment creation spikes.
    fn maybe_flush(&mut self) {
        let Some(policy) = self.config.flush else {
            return;
        };
        let now = self.v_instructions();
        self.recent_fragments.push(now);
        let cutoff = now.saturating_sub(policy.window);
        self.recent_fragments.retain(|&t| t >= cutoff);
        if self.recent_fragments.len() as u32 > policy.max_new_fragments {
            self.cache.flush();
            self.stats.cache_flushes += 1;
            self.recent_fragments.clear();
        }
    }

    fn finish_overheads(&mut self) {
        self.stats.interpretation_overhead =
            self.stats.interpreted * self.config.cost.interp_cost_per_inst();
        self.stats.translated_code_bytes = self.cache.total_code_bytes();
        self.stats.engine = self.engine.stats.clone();
    }
}

/// Interprets `program` directly, emitting the **original-program** trace
/// (the paper's "original" superscalar configuration and the native-Alpha
/// bars of Figures 4, 6 and 8).
///
/// Returns the exit condition and the number of instructions traced.
pub fn trace_original<S: TraceSink>(program: &Program, budget: u64, sink: &mut S) -> (VmExit, u64) {
    use alpha_isa::{step, AlignPolicy, BranchOp, Control, Inst};
    let decoded = DecodeCache::new(program);
    let (mut cpu, mut mem) = program.load();
    let mut count = 0u64;
    loop {
        if count >= budget {
            return (VmExit::Budget, count);
        }
        let pc = cpu.pc;
        let inst = match decoded.fetch(pc) {
            Ok(i) => i,
            Err(trap) => {
                return (
                    VmExit::Trapped {
                        vaddr: pc,
                        trap,
                        state: Box::new(cpu.registers()),
                    },
                    count,
                )
            }
        };
        let before_regs = cpu.clone();
        let outcome = match step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce) {
            Ok(o) => o,
            Err(trap) => {
                return (
                    VmExit::Trapped {
                        vaddr: pc,
                        trap,
                        state: Box::new(cpu.registers()),
                    },
                    count,
                )
            }
        };
        count += 1;
        let mut d = DynInst::alu(pc, 4);
        d.next_pc = outcome.next_pc;
        d.class = match inst {
            Inst::Operate { op, .. } if op.is_multiply() => InstClass::IntMul,
            Inst::Operate { .. } => InstClass::IntAlu,
            Inst::Mem { op, .. } if op.is_load() => InstClass::Load,
            Inst::Mem { op, .. } if op.is_store() => InstClass::Store,
            Inst::Mem { .. } => InstClass::IntAlu,
            Inst::Branch {
                op: BranchOp::Bsr, ..
            } => InstClass::Call,
            Inst::Branch {
                op: BranchOp::Br, ..
            } => InstClass::Branch,
            Inst::Branch { .. } => InstClass::CondBranch,
            Inst::Jump { kind, .. } => match kind {
                alpha_isa::JumpKind::Ret => InstClass::Return,
                alpha_isa::JumpKind::Jsr => InstClass::IndirectCall,
                _ => InstClass::IndirectJump,
            },
            Inst::CallPal { .. } => InstClass::IntAlu,
            // Traps at `step` above; never retires into the trace.
            Inst::Unimplemented { .. } => unreachable!("unimplemented instructions trap"),
        };
        let mut srcs = [None; 3];
        for (k, r) in inst.sources().iter().enumerate() {
            srcs[k] = Some(r.number());
        }
        d.srcs = srcs;
        d.dst = inst.dest().map(|r| r.number());
        d.mem_addr = outcome.mem.map(|m| m.addr);
        d.taken = outcome.control.is_taken();
        if let Control::Indirect { target, .. } = outcome.control {
            d.v_target = target;
        }
        let _ = before_regs;
        sink.retire(&d);
        if outcome.control == Control::Halt {
            return (VmExit::Halted, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullSink;
    use crate::translate::ChainPolicy;
    use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg};
    use ildp_isa::IsaForm;

    fn loop_program(iters: i16) -> Program {
        let mut asm = Assembler::new(0x1_0000);
        let buf = asm.zero_block(4096);
        asm.li32(Reg::A1, buf as u32);
        asm.lda_imm(Reg::A0, iters);
        asm.clr(Reg::V0);
        let top = asm.here("top");
        asm.addq(Reg::V0, Reg::A0, Reg::V0);
        asm.and_imm(Reg::A0, 0x3f, Reg::new(3));
        asm.s8addq(Reg::new(3), Reg::A1, Reg::new(3));
        asm.stq(Reg::V0, 0, Reg::new(3));
        asm.ldq(Reg::new(4), 0, Reg::new(3));
        asm.addq(Reg::V0, Reg::new(4), Reg::V0);
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        asm.finish().unwrap()
    }

    fn final_state_matches(form: IsaForm, chain: ChainPolicy) {
        let program = loop_program(500);
        // Reference: pure interpretation.
        let (mut rcpu, mut rmem) = program.load();
        run_to_halt(
            &mut rcpu,
            &mut rmem,
            &program,
            AlignPolicy::Enforce,
            100_000,
        )
        .unwrap();

        let config = VmConfig {
            translator: Translator {
                form,
                chain,
                acc_count: 4,
                fuse_memory: false,
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(config, &program);
        let exit = vm.run(100_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted);
        assert!(
            vm.stats().fragments > 0,
            "hot loop must have been translated ({form:?}, {chain:?})"
        );
        assert!(
            vm.stats().engine.v_insts > 1_000,
            "most iterations must run translated ({form:?}, {chain:?}): {}",
            vm.stats().engine.v_insts
        );
        assert_eq!(
            vm.cpu().registers(),
            rcpu.registers(),
            "translated execution must preserve architected state \
             ({form:?}, {chain:?})"
        );
    }

    #[test]
    fn modified_form_preserves_architecture() {
        final_state_matches(IsaForm::Modified, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn basic_form_preserves_architecture() {
        final_state_matches(IsaForm::Basic, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn no_pred_chaining_preserves_architecture() {
        final_state_matches(IsaForm::Modified, ChainPolicy::NoPred);
    }

    #[test]
    fn sw_pred_chaining_preserves_architecture() {
        final_state_matches(IsaForm::Basic, ChainPolicy::SwPred);
    }

    #[test]
    fn basic_executes_more_instructions_than_modified() {
        let program = loop_program(2000);
        let run = |form| {
            let config = VmConfig {
                translator: Translator {
                    form,
                    ..Translator::default()
                },
                ..VmConfig::default()
            };
            let mut vm = Vm::new(config, &program);
            vm.run(1_000_000, &mut NullSink);
            vm.stats().clone()
        };
        let basic = run(IsaForm::Basic);
        let modified = run(IsaForm::Modified);
        assert!(
            basic.dynamic_expansion() > modified.dynamic_expansion(),
            "basic {} vs modified {}",
            basic.dynamic_expansion(),
            modified.dynamic_expansion()
        );
        assert!(basic.copy_pct() > modified.copy_pct());
        assert!(basic.dynamic_expansion() > 1.0);
    }

    #[test]
    fn overhead_model_reports_per_inst_cost() {
        let program = loop_program(500);
        let mut vm = Vm::new(VmConfig::default(), &program);
        vm.run(100_000, &mut NullSink);
        let per = vm.stats().overhead_per_translated_inst();
        assert!(
            (500.0..2500.0).contains(&per),
            "per-instruction DBT cost {per} out of plausible range"
        );
    }

    #[test]
    fn trace_original_halts_and_counts() {
        let program = loop_program(100);
        let (exit, n) = trace_original(&program, 1_000_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted);
        assert!(n > 800);
    }

    #[test]
    fn budget_exhaustion() {
        let program = loop_program(10_000);
        let mut vm = Vm::new(VmConfig::default(), &program);
        let exit = vm.run(5_000, &mut NullSink);
        assert_eq!(exit, VmExit::Budget);
    }
}
