//! The co-designed virtual machine run loop (paper §4.1).
//!
//! Orchestrates the three modes: **interpret** (with candidate profiling),
//! **translate** (superblock collection → strand translation → fragment
//! installation and patching), and **execute** (the [`Engine`] running
//! translated code, streaming the retired-instruction trace into a timing
//! model). Matches the paper's simulation methodology: detailed timing is
//! collected for translated (and chained) code only, and the overall
//! performance metric is V-ISA instructions per cycle over that trace.

use crate::classify::CategoryCounts;
use crate::cost::CostModel;
use crate::engine::{Engine, EngineConfig, FragExit, TraceSink};
use crate::error::{SnapshotError, VmError};
use crate::fragment::{FragmentId, TranslationCache};
use crate::profile::{
    collect_superblock_with_output, interp_step, Candidates, InterpEvent, ProfileConfig,
};
use crate::snapshot::{program_digest, Snapshot};
use crate::translate::{ChainPolicy, Translator};
use alpha_isa::{CpuState, DecodeCache, Memory, Program, Trap};
use ildp_uarch::{DynInst, InstClass};
use std::collections::HashMap;

/// Dynamo-style phase-change flushing (paper §4.1, after Dynamo): when
/// fragment formation accelerates abruptly — the signature of a program
/// phase change — the whole translation cache is flushed so the new
/// phase's code gets freshly formed fragments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlushPolicy {
    /// Window length, in V-ISA instructions executed.
    pub window: u64,
    /// Fragments created within one window that trigger a flush.
    pub max_new_fragments: u32,
}

impl Default for FlushPolicy {
    fn default() -> FlushPolicy {
        FlushPolicy {
            window: 200_000,
            max_new_fragments: 64,
        }
    }
}

/// One translation, presented to an [`InstallValidator`] before it is
/// installed in the translation cache.
#[derive(Debug)]
pub struct InstallReview<'a> {
    /// The collected source superblock.
    pub sb: &'a crate::Superblock,
    /// The emitted translation (code, metadata, recovery tables, and the
    /// analysis trace behind them).
    pub code: &'a crate::TranslatedCode,
    /// The translator configuration that produced it.
    pub translator: &'a Translator,
}

/// Install-time translation validation hook.
///
/// A plain function pointer (not a closure) so [`VmConfig`] stays `Copy`;
/// `Err` carries a human-readable diagnostic. The `ildp-verifier` crate
/// provides implementations running its static-analysis passes.
pub type InstallValidator = fn(&InstallReview<'_>) -> Result<(), String>;

/// What the VM does when the install validator rejects a translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OnViolation {
    /// Panic with the diagnostic — a rejected translation is a translator
    /// bug, and tests want to fail loudly.
    #[default]
    Panic,
    /// Refuse the installation and keep interpreting that code
    /// (`reject-on-violation` mode): the fragment never enters the cache,
    /// and [`VmStats::verify_rejected`] counts the refusal.
    Reject,
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Translator settings (ISA form, chaining policy, accumulators).
    pub translator: Translator,
    /// Profiling thresholds.
    pub profile: ProfileConfig,
    /// Engine settings.
    pub engine: EngineConfig,
    /// Translation-overhead cost model.
    pub cost: CostModel,
    /// Optional phase-change cache flushing (off by default, matching the
    /// paper's evaluated configuration).
    pub flush: Option<FlushPolicy>,
    /// Optional install-time translation validator.
    pub validator: Option<InstallValidator>,
    /// Response to validator rejections.
    pub on_violation: OnViolation,
    /// Optional translation-cache code budget in bytes: installing past it
    /// clock-evicts cold fragments ([`VmStats::evictions`]). `None` keeps
    /// the unbounded cache the paper assumes.
    pub cache_budget: Option<u64>,
    /// Optional per-dispatch watchdog fuel in V-ISA instructions: an
    /// engine dispatch retiring more is preempted at the next fragment
    /// boundary and its entry region demoted. `None` disables the
    /// watchdog.
    pub fuel: Option<u64>,
    /// Degradation-ladder depth: how many demotions a region takes before
    /// it is blacklisted to interpret-only. Level 0 translates with the
    /// configured translator, levels ≥ 1 without the optional
    /// optimizations; `max_demotions` of 0 means interpret everything.
    pub max_demotions: u8,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            translator: Translator::default(),
            profile: ProfileConfig::default(),
            engine: EngineConfig::default(),
            cost: CostModel::default(),
            flush: None,
            validator: None,
            on_violation: OnViolation::default(),
            cache_budget: None,
            fuel: None,
            max_demotions: 2,
        }
    }
}

/// Why a VM run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmExit {
    /// The guest program halted.
    Halted,
    /// A precise trap was delivered.
    Trapped {
        /// Faulting V-address.
        vaddr: u64,
        /// The condition.
        trap: Trap,
        /// Recovered architected register state.
        state: Box<[u64; 32]>,
    },
    /// The instruction budget was exhausted.
    Budget,
    /// A structural runtime invariant failed (a corrupted or stale
    /// fragment reached execution). The VM is stopped; the architected
    /// state is the last consistent fragment-boundary state.
    Fault {
        /// What failed.
        error: VmError,
    },
}

/// Aggregate statistics of a VM run (feeding Table 2, Figure 7 and the
/// §4.2 overhead numbers).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VmStats {
    /// Instructions interpreted (cold code).
    pub interpreted: u64,
    /// Fragments translated.
    pub fragments: u64,
    /// Source V-ISA instructions translated (static).
    pub translated_src_insts: u64,
    /// I-ISA instructions emitted (static).
    pub emitted_insts: u64,
    /// Static copy instructions emitted.
    pub static_copies: u64,
    /// Strands formed / prematurely terminated.
    pub strands: u64,
    /// Premature strand terminations.
    pub terminations: u64,
    /// Static translated code bytes installed in the cache.
    pub translated_code_bytes: u64,
    /// Modelled DBT overhead in Alpha instructions (§4.2).
    pub translation_overhead: u64,
    /// Modelled interpretation overhead in Alpha instructions.
    pub interpretation_overhead: u64,
    /// Translation-cache flushes performed (phase-change policy).
    pub cache_flushes: u64,
    /// Fragments checked by the install validator.
    pub fragments_verified: u64,
    /// Wall time spent in the install validator, in nanoseconds.
    pub verify_nanos: u64,
    /// Translations refused under [`OnViolation::Reject`].
    pub verify_rejected: u64,
    /// Fragments clock-evicted under the cache budget.
    pub evictions: u64,
    /// Fragments invalidated by guest stores into their source pages.
    pub smc_invalidations: u64,
    /// Degradation-ladder transitions (each region counts once per level
    /// it descends).
    pub demotions: u64,
    /// Regions that reached the bottom of the ladder (interpret-only).
    pub blacklisted: u64,
    /// Engine dispatches preempted by the watchdog fuel budget.
    pub fuel_preemptions: u64,
    /// Direct-link sites un-patched back to slow-path exits by precise
    /// invalidation.
    pub unlinked_sites: u64,
    /// Dynamic engine statistics.
    pub engine: crate::engine::EngineStats,
    /// Static usage-category counts across all translations.
    pub static_categories: CategoryCounts,
    /// Static oracle-boundary category counts (paper's [28] comparison).
    pub oracle_categories: CategoryCounts,
}

impl VmStats {
    /// Dynamic I-ISA instructions per retired V-ISA instruction
    /// (Table 2: "relative number of dynamic instructions"; paper
    /// averages: basic 1.60, modified 1.36).
    pub fn dynamic_expansion(&self) -> f64 {
        if self.engine.v_insts == 0 {
            0.0
        } else {
            self.engine.executed as f64 / self.engine.v_insts as f64
        }
    }

    /// Percentage of executed instructions that are copies (Table 2;
    /// paper averages: basic 17.7%, modified 3.1%).
    pub fn copy_pct(&self) -> f64 {
        if self.engine.executed == 0 {
            0.0
        } else {
            self.engine.copies_executed as f64 * 100.0 / self.engine.executed as f64
        }
    }

    /// Translated static code bytes relative to the source code bytes
    /// (Table 2: "relative number of static instruction bytes"; paper
    /// averages: basic 1.17, modified 1.07).
    pub fn static_code_ratio(&self) -> f64 {
        if self.translated_src_insts == 0 {
            0.0
        } else {
            self.translated_code_bytes as f64 / (4.0 * self.translated_src_insts as f64)
        }
    }

    /// DBT instructions per translated source instruction (§4.2; paper
    /// average ≈ 1,125).
    pub fn overhead_per_translated_inst(&self) -> f64 {
        if self.translated_src_insts == 0 {
            0.0
        } else {
            self.translation_overhead as f64 / self.translated_src_insts as f64
        }
    }

    /// Fraction of retired V-ISA instructions that ran interpreted — the
    /// degradation metric: 0 is fully translated, 1 is interpret-only
    /// (everything evicted, invalidated or blacklisted).
    pub fn interp_fallback_ratio(&self) -> f64 {
        let total = self.interpreted + self.engine.v_insts;
        if total == 0 {
            0.0
        } else {
            self.interpreted as f64 / total as f64
        }
    }
}

/// The co-designed VM. See the module documentation.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Assembler, Reg};
/// use ildp_core::{NullSink, Vm, VmConfig, VmExit};
///
/// let mut asm = Assembler::new(0x1_0000);
/// asm.lda_imm(Reg::A0, 200);
/// let top = asm.here("top");
/// asm.subq_imm(Reg::A0, 1, Reg::A0);
/// asm.bne(Reg::A0, top);
/// asm.halt();
/// let program = asm.finish()?;
///
/// let mut vm = Vm::new(VmConfig::default(), &program);
/// let exit = vm.run(10_000, &mut NullSink);
/// assert_eq!(exit, VmExit::Halted);
/// assert!(vm.stats().fragments > 0, "the loop must get translated");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Vm<'p> {
    config: VmConfig,
    program: &'p Program,
    /// Predecoded code segment driving the interpreter's fetches.
    decoded: DecodeCache,
    cpu: CpuState,
    mem: Memory,
    candidates: Candidates,
    cache: TranslationCache,
    engine: Engine,
    stats: VmStats,
    /// V-inst timestamps of recent fragment creations (flush policy).
    /// Meaningful only within `window_epoch`.
    recent_fragments: Vec<u64>,
    /// The cache epoch `recent_fragments` belongs to: an epoch bump from
    /// any source resets the flush window.
    window_epoch: u64,
    /// Degradation-ladder level per region entry V-address.
    demotion: HashMap<u64, u8>,
    /// SMC invalidations per region entry V-address (repeat offenders are
    /// demoted).
    smc_counts: HashMap<u64, u32>,
    /// Console bytes in emission order (interpreted + translated).
    output: Vec<u8>,
    /// Cache-derived stats carried over a snapshot restore:
    /// `finish_overheads` recomputes `translated_code_bytes`, `evictions`
    /// and `unlinked_sites` from the (fresh, empty) cache, so the totals
    /// accumulated before the restore are added back as baselines.
    base_code_bytes: u64,
    base_evictions: u64,
    base_unlinked: u64,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the program loaded and the PC at its entry.
    pub fn new(config: VmConfig, program: &'p Program) -> Vm<'p> {
        let (cpu, mem) = program.load();
        // The VmConfig-level fuel knob flows into the engine config; an
        // explicit EngineConfig::fuel wins if both are set.
        let engine_config = EngineConfig {
            fuel: config.engine.fuel.or(config.fuel),
            ..config.engine
        };
        Vm {
            config,
            program,
            decoded: DecodeCache::new(program),
            cpu,
            mem,
            candidates: Candidates::new(),
            cache: TranslationCache::new(),
            engine: Engine::new(engine_config),
            stats: VmStats::default(),
            recent_fragments: Vec::new(),
            window_epoch: 0,
            demotion: HashMap::new(),
            smc_counts: HashMap::new(),
            output: Vec::new(),
            base_code_bytes: 0,
            base_evictions: 0,
            base_unlinked: 0,
        }
    }

    /// Captures the complete resumable state as a [`Snapshot`].
    ///
    /// Must be taken at a fragment boundary — i.e. while [`run`](Vm::run)
    /// is not executing (any return from `run` is one): there the GPR
    /// file is architecturally complete, every accumulator is dead, and
    /// the dual-RAS is predictor-only state (misses fall back to
    /// dispatch), so none of the engine internals need capturing. The
    /// translation cache is deliberately omitted — a restored VM starts
    /// cold and retranslates on demand; the entry addresses of live
    /// fragments are recorded as re-heat hints instead.
    pub fn snapshot(&self) -> Snapshot {
        let mut pages: Vec<(u64, Vec<u8>)> = self
            .mem
            .pages()
            .filter(|(_, bytes)| bytes.iter().any(|&b| b != 0))
            .map(|(n, bytes)| (n, bytes.to_vec()))
            .collect();
        pages.sort_unstable_by_key(|&(n, _)| n);
        let mut candidates: Vec<(u64, u32)> = self.candidates.counters().collect();
        candidates.sort_unstable();
        let mut translated: Vec<u64> = self.cache.fragments().map(|f| f.vstart).collect();
        translated.sort_unstable();
        let mut demotion: Vec<(u64, u8)> = self.demotion.iter().map(|(&a, &l)| (a, l)).collect();
        demotion.sort_unstable();
        let mut smc_counts: Vec<(u64, u32)> =
            self.smc_counts.iter().map(|(&a, &c)| (a, c)).collect();
        smc_counts.sort_unstable();
        // The captured stats are brought current exactly as
        // `finish_overheads` would, so a snapshot taken between `run`
        // calls is self-consistent even if the caller poked at the cache.
        let mut stats = self.stats.clone();
        stats.interpretation_overhead = stats.interpreted * self.config.cost.interp_cost_per_inst();
        stats.translated_code_bytes = self.base_code_bytes + self.cache.total_code_bytes();
        stats.evictions = self.base_evictions + self.cache.evictions();
        stats.unlinked_sites = self.base_unlinked + self.cache.unpatches();
        stats.engine = self.engine.stats.clone();
        Snapshot {
            program_digest: program_digest(self.program),
            v_insts: self.v_instructions(),
            pc: self.cpu.pc,
            regs: self.cpu.registers(),
            pages,
            output: self.output.clone(),
            candidates,
            translated,
            demotion,
            smc_counts,
            stats,
        }
    }

    /// Reconstructs a VM from a snapshot, onto a fresh (cold) translation
    /// cache. The program must be the one the snapshot was taken from
    /// (checked by digest). Continuing the restored VM retires the exact
    /// same architected instruction stream as the uninterrupted run;
    /// statistics continue cumulatively from the snapshot, so ratios like
    /// [`VmStats::interp_fallback_ratio`] remain correct across the
    /// resume.
    pub fn restore(
        config: VmConfig,
        program: &'p Program,
        snap: &Snapshot,
    ) -> Result<Vm<'p>, SnapshotError> {
        let expected = program_digest(program);
        if snap.program_digest != expected {
            return Err(SnapshotError::ProgramMismatch {
                expected,
                actual: snap.program_digest,
            });
        }
        let mut vm = Vm::new(config, program);
        vm.cpu = CpuState::with_registers(snap.pc, &snap.regs);
        vm.mem = snap.to_memory();
        // `bump` fires exactly once, when a counter *reaches* the
        // threshold — so every restored counter is clamped one below it.
        // Regions that were translated at snapshot time are primed to
        // re-heat on their next execution; everything else keeps its
        // progress (capped so over-threshold counters from translated or
        // blacklisted regions can fire again rather than sticking).
        let reheat = config.profile.threshold.saturating_sub(1);
        for &(vaddr, count) in &snap.candidates {
            vm.candidates.set(vaddr, count.min(reheat));
        }
        for &vstart in &snap.translated {
            vm.candidates.set(vstart, reheat);
        }
        vm.demotion = snap.demotion.iter().copied().collect();
        vm.smc_counts = snap.smc_counts.iter().copied().collect();
        vm.output = snap.output.clone();
        vm.stats = snap.stats.clone();
        vm.engine.stats = snap.stats.engine.clone();
        vm.base_code_bytes = snap.stats.translated_code_bytes;
        vm.base_evictions = snap.stats.evictions;
        vm.base_unlinked = snap.stats.unlinked_sites;
        Ok(vm)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// The translation cache (inspection).
    pub fn cache(&self) -> &TranslationCache {
        &self.cache
    }

    /// Mutable access to the translation cache, for fault-injection
    /// harnesses and external cache management. Invalidation should go
    /// through [`invalidate_fragment`](Vm::invalidate_fragment) /
    /// [`notify_code_write`](Vm::notify_code_write), which also maintain
    /// the engine-side links and profile counters.
    pub fn cache_mut(&mut self) -> &mut TranslationCache {
        &mut self.cache
    }

    /// The architected CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// The guest memory (inspection, e.g. differential testing).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Console output produced so far (interpreted + translated), in
    /// emission order.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Total V-ISA instructions executed so far (interpreted or
    /// translated), excluding architectural NOPs — every execution mode
    /// elides them from the count, so this is a pure function of the
    /// architected position regardless of what was translated when.
    /// Snapshot/replay lockstep is count-anchored on exactly this value.
    pub fn v_instructions(&self) -> u64 {
        self.stats.interpreted + self.engine.stats.v_insts
    }

    /// The translator / profiler pair for one degradation level. Level 0
    /// is the configured pair; demoted regions lose the optional
    /// optimizations — predictive chaining (sw-pred, dual-RAS) and memory
    /// fusion — and translate shorter superblocks, the leaner tier the
    /// ladder retries before blacklisting.
    fn translation_tier(&self, level: u8) -> (Translator, ProfileConfig) {
        if level == 0 {
            (self.config.translator, self.config.profile)
        } else {
            (
                Translator {
                    chain: ChainPolicy::NoPred,
                    fuse_memory: false,
                    ..self.config.translator
                },
                ProfileConfig {
                    max_superblock: self.config.profile.max_superblock.min(32),
                    ..self.config.profile
                },
            )
        }
    }

    /// Descends one degradation-ladder level for the region at `vstart`
    /// and resets its profile counter so it can re-heat into the leaner
    /// tier (or, at the bottom, stay interpreted).
    fn demote(&mut self, vstart: u64) {
        let level = self.demotion.entry(vstart).or_insert(0);
        if *level >= self.config.max_demotions {
            return;
        }
        *level += 1;
        self.stats.demotions += 1;
        if *level >= self.config.max_demotions {
            self.stats.blacklisted += 1;
        }
        self.candidates.reset(vstart);
    }

    /// Precisely invalidates one fragment: the cache slot and every
    /// incoming direct link (cache side), the dual-RAS links (engine
    /// side), and the region's profile counter so it can re-heat. Returns
    /// the fragment's entry V-address, or `None` if the id was already
    /// dead.
    pub fn invalidate_fragment(&mut self, id: FragmentId) -> Option<u64> {
        let vstart = self.cache.invalidate(id)?;
        self.engine.unlink_fragment(id);
        self.candidates.reset(vstart);
        Some(vstart)
    }

    /// Notifies the VM that guest memory in `[addr, addr + len)` was
    /// written: every fragment whose source code shares a page with the
    /// range is invalidated (self-modifying-code response), and regions
    /// invalidated repeatedly are demoted down the ladder. The engine and
    /// interpreter SMC detection paths both land here; it is public so an
    /// embedder can report external code writes (DMA, another core).
    pub fn notify_code_write(&mut self, addr: u64, len: u64) {
        for id in self.cache.fragments_on_write(addr, len) {
            if let Some(vstart) = self.invalidate_fragment(id) {
                self.stats.smc_invalidations += 1;
                let n = {
                    let n = self.smc_counts.entry(vstart).or_insert(0);
                    *n += 1;
                    *n
                };
                if n >= 2 {
                    self.demote(vstart);
                }
            }
        }
    }

    fn translate_at(&mut self, vaddr: u64) -> bool {
        debug_assert_eq!(self.cpu.pc, vaddr);
        if self.cache.lookup(vaddr).is_some() {
            return true;
        }
        let level = self.demotion.get(&vaddr).copied().unwrap_or(0);
        if level >= self.config.max_demotions {
            // Bottom of the ladder: this region stays interpreted.
            return false;
        }
        let (translator, profile) = self.translation_tier(level);
        match collect_superblock_with_output(
            &mut self.cpu,
            &mut self.mem,
            self.program,
            &profile,
            &mut self.output,
        ) {
            Ok(sb) if !sb.is_empty() => {
                self.maybe_flush();
                let out = translator.translate(&sb);
                if let Some(validator) = self.config.validator {
                    let review = InstallReview {
                        sb: &sb,
                        code: &out,
                        translator: &translator,
                    };
                    let t0 = std::time::Instant::now();
                    let verdict = validator(&review);
                    // Verifier time is accounted separately from the
                    // paper's translation-overhead model: it is a
                    // debugging aid, not part of the modeled DBT cost.
                    self.stats.verify_nanos += t0.elapsed().as_nanos() as u64;
                    self.stats.fragments_verified += 1;
                    if let Err(msg) = verdict {
                        match self.config.on_violation {
                            OnViolation::Panic => panic!(
                                "translation validator rejected fragment at \
                                 {:#x}: {msg}",
                                out.vstart
                            ),
                            OnViolation::Reject => {
                                self.stats.verify_rejected += 1;
                                // Collection still executed the path once.
                                self.stats.interpreted += out.src_inst_count as u64;
                                // Ladder: retry without the optional
                                // optimizations, then blacklist.
                                self.demote(out.vstart);
                                return false;
                            }
                        }
                    }
                }
                self.stats.fragments += 1;
                self.stats.translated_src_insts += out.src_inst_count as u64;
                self.stats.emitted_insts += out.insts.len() as u64;
                self.stats.static_copies += out.stats.copies as u64;
                self.stats.strands += out.stats.strands as u64;
                self.stats.terminations += out.stats.terminations as u64;
                self.stats.static_categories.merge(&out.stats.categories);
                self.stats
                    .oracle_categories
                    .merge(&out.stats.oracle_categories);
                self.stats.translation_overhead += self
                    .config
                    .cost
                    .fragment_cost(out.src_inst_count as u64, out.insts.len() as u64);
                // Collection executed the path once: count it as
                // interpreted work (the paper's collection runs during
                // interpretation).
                self.stats.interpreted += out.src_inst_count as u64;
                let id = self.cache.install(
                    out.vstart,
                    translator.form,
                    out.insts,
                    out.meta,
                    out.src_inst_count,
                    out.recovery,
                );
                if let Some(budget) = self.config.cache_budget {
                    for (fid, vstart) in self.cache.enforce_budget(budget, id) {
                        self.engine.unlink_fragment(fid);
                        self.candidates.reset(vstart);
                    }
                }
                true
            }
            Ok(_) => false,
            Err((pc, _trap)) => {
                // Trap during collection: abandon the superblock; the trap
                // will be re-raised by ordinary interpretation.
                self.cpu.pc = pc;
                false
            }
        }
    }

    /// Runs until halt, trap, or `budget` V-ISA instructions.
    ///
    /// Monomorphized over the sink (see [`TraceSink::TRACING`]): running
    /// with [`crate::NullSink`] compiles the trace machinery out of the
    /// engine's hot loop.
    pub fn run<S: TraceSink>(&mut self, budget: u64, sink: &mut S) -> VmExit {
        loop {
            if self.v_instructions() >= budget {
                self.finish_overheads();
                return VmExit::Budget;
            }
            // Execute translated code when the current PC has a fragment.
            if let Some(fid) = self.cache.lookup(self.cpu.pc) {
                let entry_vstart = self.cpu.pc;
                let engine_budget = budget.saturating_sub(self.stats.interpreted);
                let engine_exit = self.engine.run(
                    &mut self.cache,
                    fid,
                    &mut self.cpu,
                    &mut self.mem,
                    engine_budget,
                    sink,
                );
                self.output.append(&mut self.engine.output);
                match engine_exit {
                    FragExit::NotTranslated { vtarget } => {
                        self.cpu.pc = vtarget;
                        // Fragment exit targets are superblock start
                        // candidates (paper §3.1).
                        if self.candidates.bump(vtarget, self.config.profile.threshold) {
                            self.translate_at(vtarget);
                        }
                    }
                    FragExit::Halt => {
                        self.finish_overheads();
                        return VmExit::Halted;
                    }
                    FragExit::Budget => {
                        self.finish_overheads();
                        return VmExit::Budget;
                    }
                    FragExit::Trap { vaddr, trap, state } => {
                        self.finish_overheads();
                        return VmExit::Trapped { vaddr, trap, state };
                    }
                    FragExit::SmcStore {
                        addr,
                        len,
                        vaddr,
                        state,
                    } => {
                        // The engine stopped *before* the store with
                        // recovered precise state; re-raise from the
                        // store's V-address so the write executes
                        // interpretively against the freshly-invalidated
                        // cache (no livelock: invalidation unwatches the
                        // page).
                        self.cpu.set_registers(&state);
                        self.cpu.pc = vaddr;
                        self.notify_code_write(addr, len);
                    }
                    FragExit::Preempted { vtarget } => {
                        // The fragment chain exceeded its fuel budget
                        // without yielding to the dispatcher: demote the
                        // entry region and drop its fragment so the next
                        // heat-up takes the leaner tier.
                        self.cpu.pc = vtarget;
                        self.stats.fuel_preemptions += 1;
                        self.demote(entry_vstart);
                        if let Some(id) = self.cache.lookup(entry_vstart) {
                            self.invalidate_fragment(id);
                        }
                    }
                    FragExit::Fault { error } => {
                        self.finish_overheads();
                        return VmExit::Fault { error };
                    }
                }
                continue;
            }
            // Otherwise interpret one instruction.
            match interp_step(
                &mut self.cpu,
                &mut self.mem,
                &self.decoded,
                &mut self.candidates,
                &self.config.profile,
                &mut self.stats.interpreted,
                &mut self.output,
                Some(&self.cache),
            ) {
                InterpEvent::Continue => {}
                InterpEvent::Halted => {
                    self.finish_overheads();
                    return VmExit::Halted;
                }
                InterpEvent::Hot { vaddr } => {
                    self.translate_at(vaddr);
                }
                InterpEvent::Trapped { vaddr, trap } => {
                    self.finish_overheads();
                    return VmExit::Trapped {
                        vaddr,
                        trap,
                        state: Box::new(self.cpu.registers()),
                    };
                }
                InterpEvent::SmcStore { addr, len } => {
                    // The interpreted store has already completed and
                    // architected state is current; just invalidate the
                    // touched fragments.
                    self.notify_code_write(addr, len);
                }
            }
        }
    }

    /// Dynamo-style phase detection: flush when fragment creation spikes.
    fn maybe_flush(&mut self) {
        let Some(policy) = self.config.flush else {
            return;
        };
        // The window counters describe one cache epoch. If the epoch
        // moved underneath us (our own flush below, or an external
        // `cache_mut().flush()`), stale timestamps from before the flush
        // would re-trigger immediately and double-flush back-to-back
        // phase changes — reset the window atomically with the epoch.
        if self.window_epoch != self.cache.epoch() {
            self.window_epoch = self.cache.epoch();
            self.recent_fragments.clear();
        }
        let now = self.v_instructions();
        self.recent_fragments.push(now);
        let cutoff = now.saturating_sub(policy.window);
        self.recent_fragments.retain(|&t| t >= cutoff);
        if self.recent_fragments.len() as u32 > policy.max_new_fragments {
            self.cache.flush();
            self.stats.cache_flushes += 1;
            self.window_epoch = self.cache.epoch();
            self.recent_fragments.clear();
        }
    }

    fn finish_overheads(&mut self) {
        self.stats.interpretation_overhead =
            self.stats.interpreted * self.config.cost.interp_cost_per_inst();
        // The `base_*` offsets are nonzero only on a snapshot-restored
        // VM, whose cache restarted from cold: they carry the totals
        // accumulated before the restore.
        self.stats.translated_code_bytes = self.base_code_bytes + self.cache.total_code_bytes();
        self.stats.evictions = self.base_evictions + self.cache.evictions();
        self.stats.unlinked_sites = self.base_unlinked + self.cache.unpatches();
        self.stats.engine = self.engine.stats.clone();
    }
}

/// Interprets `program` directly, emitting the **original-program** trace
/// (the paper's "original" superscalar configuration and the native-Alpha
/// bars of Figures 4, 6 and 8).
///
/// Returns the exit condition and the number of instructions traced.
pub fn trace_original<S: TraceSink>(program: &Program, budget: u64, sink: &mut S) -> (VmExit, u64) {
    use alpha_isa::{step, AlignPolicy, BranchOp, Control, Inst};
    let decoded = DecodeCache::new(program);
    let (mut cpu, mut mem) = program.load();
    let mut count = 0u64;
    loop {
        if count >= budget {
            return (VmExit::Budget, count);
        }
        let pc = cpu.pc;
        let inst = match decoded.fetch(pc) {
            Ok(i) => i,
            Err(trap) => {
                return (
                    VmExit::Trapped {
                        vaddr: pc,
                        trap,
                        state: Box::new(cpu.registers()),
                    },
                    count,
                )
            }
        };
        let before_regs = cpu.clone();
        let outcome = match step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce) {
            Ok(o) => o,
            Err(trap) => {
                return (
                    VmExit::Trapped {
                        vaddr: pc,
                        trap,
                        state: Box::new(cpu.registers()),
                    },
                    count,
                )
            }
        };
        count += 1;
        let mut d = DynInst::alu(pc, 4);
        d.next_pc = outcome.next_pc;
        d.class = match inst {
            Inst::Operate { op, .. } if op.is_multiply() => InstClass::IntMul,
            Inst::Operate { .. } => InstClass::IntAlu,
            Inst::Mem { op, .. } if op.is_load() => InstClass::Load,
            Inst::Mem { op, .. } if op.is_store() => InstClass::Store,
            Inst::Mem { .. } => InstClass::IntAlu,
            Inst::Branch {
                op: BranchOp::Bsr, ..
            } => InstClass::Call,
            Inst::Branch {
                op: BranchOp::Br, ..
            } => InstClass::Branch,
            Inst::Branch { .. } => InstClass::CondBranch,
            Inst::Jump { kind, .. } => match kind {
                alpha_isa::JumpKind::Ret => InstClass::Return,
                alpha_isa::JumpKind::Jsr => InstClass::IndirectCall,
                _ => InstClass::IndirectJump,
            },
            Inst::CallPal { .. } => InstClass::IntAlu,
            // Traps at `step` above; never retires into the trace.
            Inst::Unimplemented { .. } => unreachable!("unimplemented instructions trap"),
        };
        let mut srcs = [None; 3];
        for (k, r) in inst.sources().iter().enumerate() {
            srcs[k] = Some(r.number());
        }
        d.srcs = srcs;
        d.dst = inst.dest().map(|r| r.number());
        d.mem_addr = outcome.mem.map(|m| m.addr);
        d.taken = outcome.control.is_taken();
        if let Control::Indirect { target, .. } = outcome.control {
            d.v_target = target;
        }
        let _ = before_regs;
        sink.retire(&d);
        if outcome.control == Control::Halt {
            return (VmExit::Halted, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullSink;
    use crate::translate::ChainPolicy;
    use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg};
    use ildp_isa::IsaForm;

    fn loop_program(iters: i16) -> Program {
        let mut asm = Assembler::new(0x1_0000);
        let buf = asm.zero_block(4096);
        asm.li32(Reg::A1, buf as u32);
        asm.lda_imm(Reg::A0, iters);
        asm.clr(Reg::V0);
        let top = asm.here("top");
        asm.addq(Reg::V0, Reg::A0, Reg::V0);
        asm.and_imm(Reg::A0, 0x3f, Reg::new(3));
        asm.s8addq(Reg::new(3), Reg::A1, Reg::new(3));
        asm.stq(Reg::V0, 0, Reg::new(3));
        asm.ldq(Reg::new(4), 0, Reg::new(3));
        asm.addq(Reg::V0, Reg::new(4), Reg::V0);
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        asm.finish().unwrap()
    }

    fn final_state_matches(form: IsaForm, chain: ChainPolicy) {
        let program = loop_program(500);
        // Reference: pure interpretation.
        let (mut rcpu, mut rmem) = program.load();
        run_to_halt(
            &mut rcpu,
            &mut rmem,
            &program,
            AlignPolicy::Enforce,
            100_000,
        )
        .unwrap();

        let config = VmConfig {
            translator: Translator {
                form,
                chain,
                acc_count: 4,
                fuse_memory: false,
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(config, &program);
        let exit = vm.run(100_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted);
        assert!(
            vm.stats().fragments > 0,
            "hot loop must have been translated ({form:?}, {chain:?})"
        );
        assert!(
            vm.stats().engine.v_insts > 1_000,
            "most iterations must run translated ({form:?}, {chain:?}): {}",
            vm.stats().engine.v_insts
        );
        assert_eq!(
            vm.cpu().registers(),
            rcpu.registers(),
            "translated execution must preserve architected state \
             ({form:?}, {chain:?})"
        );
    }

    #[test]
    fn modified_form_preserves_architecture() {
        final_state_matches(IsaForm::Modified, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn basic_form_preserves_architecture() {
        final_state_matches(IsaForm::Basic, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn no_pred_chaining_preserves_architecture() {
        final_state_matches(IsaForm::Modified, ChainPolicy::NoPred);
    }

    #[test]
    fn sw_pred_chaining_preserves_architecture() {
        final_state_matches(IsaForm::Basic, ChainPolicy::SwPred);
    }

    #[test]
    fn basic_executes_more_instructions_than_modified() {
        let program = loop_program(2000);
        let run = |form| {
            let config = VmConfig {
                translator: Translator {
                    form,
                    ..Translator::default()
                },
                ..VmConfig::default()
            };
            let mut vm = Vm::new(config, &program);
            vm.run(1_000_000, &mut NullSink);
            vm.stats().clone()
        };
        let basic = run(IsaForm::Basic);
        let modified = run(IsaForm::Modified);
        assert!(
            basic.dynamic_expansion() > modified.dynamic_expansion(),
            "basic {} vs modified {}",
            basic.dynamic_expansion(),
            modified.dynamic_expansion()
        );
        assert!(basic.copy_pct() > modified.copy_pct());
        assert!(basic.dynamic_expansion() > 1.0);
    }

    #[test]
    fn overhead_model_reports_per_inst_cost() {
        let program = loop_program(500);
        let mut vm = Vm::new(VmConfig::default(), &program);
        vm.run(100_000, &mut NullSink);
        let per = vm.stats().overhead_per_translated_inst();
        assert!(
            (500.0..2500.0).contains(&per),
            "per-instruction DBT cost {per} out of plausible range"
        );
    }

    #[test]
    fn trace_original_halts_and_counts() {
        let program = loop_program(100);
        let (exit, n) = trace_original(&program, 1_000_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted);
        assert!(n > 800);
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let program = loop_program(500);
        // Uninterrupted run.
        let mut vm1 = Vm::new(VmConfig::default(), &program);
        assert_eq!(vm1.run(100_000, &mut NullSink), VmExit::Halted);
        // Interrupted at a mid-run boundary, snapshotted, restored cold.
        let mut vm2 = Vm::new(VmConfig::default(), &program);
        let mid = vm1.v_instructions() / 2;
        assert_eq!(vm2.run(mid, &mut NullSink), VmExit::Budget);
        let snap = vm2.snapshot();
        assert!(!snap.translated.is_empty(), "hot loop must be captured");
        let mut vm3 = Vm::restore(VmConfig::default(), &program, &snap).unwrap();
        assert_eq!(vm3.v_instructions(), snap.v_insts);
        assert_eq!(vm3.run(100_000, &mut NullSink), VmExit::Halted);
        assert_eq!(vm3.cpu().registers(), vm1.cpu().registers());
        assert_eq!(vm3.memory().content_digest(), vm1.memory().content_digest());
        assert_eq!(vm3.v_instructions(), vm1.v_instructions());
        // Stats continue cumulatively: the resumed run retranslates the
        // loop, so fragment counts only grow past the snapshot's.
        assert!(vm3.stats().fragments > snap.stats.fragments);
        assert!(vm3.stats().translated_code_bytes > snap.stats.translated_code_bytes);
        // Restoring onto a different program is refused.
        let other = loop_program(501);
        assert!(matches!(
            Vm::restore(VmConfig::default(), &other, &snap),
            Err(SnapshotError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn budget_exhaustion() {
        let program = loop_program(10_000);
        let mut vm = Vm::new(VmConfig::default(), &program);
        let exit = vm.run(5_000, &mut NullSink);
        assert_eq!(exit, VmExit::Budget);
    }
}
