//! The co-designed virtual machine run loop (paper §4.1).
//!
//! Orchestrates the three modes: **interpret** (with candidate profiling),
//! **translate** (superblock collection → strand translation → fragment
//! installation and patching), and **execute** (the [`Engine`] running
//! translated code, streaming the retired-instruction trace into a timing
//! model). Matches the paper's simulation methodology: detailed timing is
//! collected for translated (and chained) code only, and the overall
//! performance metric is V-ISA instructions per cycle over that trace.

use crate::artifact::{artifact_key, ArtifactKey, FragmentArtifact, FragmentStore};
use crate::classify::CategoryCounts;
use crate::cost::CostModel;
use crate::engine::{Engine, EngineConfig, FragExit, TraceSink};
use crate::error::{SnapshotError, VmError};
use crate::fragment::{FragmentId, TranslationCache};
use crate::pipeline::{translate_job, TranslatePool, TranslateRequest, TranslateResponse};
use crate::profile::{
    collect_superblock_with_output, interp_step, Candidates, InterpEvent, ProfileConfig,
};
use crate::replay::ReplayEvent;
use crate::snapshot::{program_digest, Snapshot};
use crate::translate::{ChainPolicy, TranslatedCode, Translator};
use alpha_isa::{CpuState, DecodeCache, Memory, Program, Trap};
use ildp_uarch::{DynInst, InstClass};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Dynamo-style phase-change flushing (paper §4.1, after Dynamo): when
/// fragment formation accelerates abruptly — the signature of a program
/// phase change — the whole translation cache is flushed so the new
/// phase's code gets freshly formed fragments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlushPolicy {
    /// Window length, in V-ISA instructions executed.
    pub window: u64,
    /// Fragments created within one window that trigger a flush.
    pub max_new_fragments: u32,
}

impl Default for FlushPolicy {
    fn default() -> FlushPolicy {
        FlushPolicy {
            window: 200_000,
            max_new_fragments: 64,
        }
    }
}

/// One translation, presented to an [`InstallValidator`] before it is
/// installed in the translation cache.
#[derive(Debug)]
pub struct InstallReview<'a> {
    /// The collected source superblock.
    pub sb: &'a crate::Superblock,
    /// The emitted translation (code, metadata, recovery tables, and the
    /// analysis trace behind them).
    pub code: &'a crate::TranslatedCode,
    /// The translator configuration that produced it.
    pub translator: &'a Translator,
}

/// Install-time translation validation hook.
///
/// A plain function pointer (not a closure) so [`VmConfig`] stays `Copy`;
/// `Err` carries a human-readable diagnostic. The `ildp-verifier` crate
/// provides implementations running its static-analysis passes.
pub type InstallValidator = fn(&InstallReview<'_>) -> Result<(), String>;

/// What the VM does when the install validator rejects a translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OnViolation {
    /// Panic with the diagnostic — a rejected translation is a translator
    /// bug, and tests want to fail loudly.
    #[default]
    Panic,
    /// Refuse the installation and keep interpreting that code
    /// (`reject-on-violation` mode): the fragment never enters the cache,
    /// and [`VmStats::verify_rejected`] counts the refusal.
    Reject,
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Translator settings (ISA form, chaining policy, accumulators).
    pub translator: Translator,
    /// Profiling thresholds.
    pub profile: ProfileConfig,
    /// Engine settings.
    pub engine: EngineConfig,
    /// Translation-overhead cost model.
    pub cost: CostModel,
    /// Optional phase-change cache flushing (off by default, matching the
    /// paper's evaluated configuration).
    pub flush: Option<FlushPolicy>,
    /// Optional install-time translation validator.
    pub validator: Option<InstallValidator>,
    /// Response to validator rejections.
    pub on_violation: OnViolation,
    /// Optional translation-cache code budget in bytes: installing past it
    /// clock-evicts cold fragments ([`VmStats::evictions`]). `None` keeps
    /// the unbounded cache the paper assumes.
    pub cache_budget: Option<u64>,
    /// Optional per-dispatch watchdog fuel in V-ISA instructions: an
    /// engine dispatch retiring more is preempted at the next fragment
    /// boundary and its entry region demoted. `None` disables the
    /// watchdog.
    pub fuel: Option<u64>,
    /// Degradation-ladder depth: how many demotions a region takes before
    /// it is blacklisted to interpret-only. Level 0 translates with the
    /// configured translator, levels ≥ 1 without the optional
    /// optimizations; `max_demotions` of 0 means interpret everything.
    pub max_demotions: u8,
    /// Translate hot regions on the shared background worker pool
    /// (default). Superblock collection stays on the execution thread —
    /// architected state is identical in either mode — and the finished
    /// fragment installs at the next fragment-boundary safe point.
    /// `false` restores the fully synchronous pipeline (translation
    /// stalls the guest), the mode deterministic-replay harnesses pin.
    pub async_translate: bool,
    /// Share translated-and-verified fragments through the process-wide
    /// [`FragmentStore`]: translations are published keyed by guest-code
    /// digest and translator configuration, and later VMs running the
    /// same code warm-start from the store instead of re-translating.
    pub shared_cache: bool,
    /// Deterministic install delay, in retired V-ISA instructions:
    /// translations complete immediately (synchronously) but install
    /// only once the VM has retired this many further instructions —
    /// a reproducible stand-in for background-translation latency, used
    /// by the chaos harness's `delayed-install` sabotage cell. Takes
    /// precedence over `async_translate`.
    pub install_delay: Option<u64>,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            translator: Translator::default(),
            profile: ProfileConfig::default(),
            engine: EngineConfig::default(),
            cost: CostModel::default(),
            flush: None,
            validator: None,
            on_violation: OnViolation::default(),
            cache_budget: None,
            fuel: None,
            max_demotions: 2,
            async_translate: true,
            shared_cache: false,
            install_delay: None,
        }
    }
}

/// Why a VM run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmExit {
    /// The guest program halted.
    Halted,
    /// A precise trap was delivered.
    Trapped {
        /// Faulting V-address.
        vaddr: u64,
        /// The condition.
        trap: Trap,
        /// Recovered architected register state.
        state: Box<[u64; 32]>,
    },
    /// The instruction budget was exhausted.
    Budget,
    /// A structural runtime invariant failed (a corrupted or stale
    /// fragment reached execution). The VM is stopped; the architected
    /// state is the last consistent fragment-boundary state.
    Fault {
        /// What failed.
        error: VmError,
    },
}

/// Aggregate statistics of a VM run (feeding Table 2, Figure 7 and the
/// §4.2 overhead numbers).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct VmStats {
    /// Instructions interpreted (cold code).
    pub interpreted: u64,
    /// Fragments translated.
    pub fragments: u64,
    /// Source V-ISA instructions translated (static).
    pub translated_src_insts: u64,
    /// I-ISA instructions emitted (static).
    pub emitted_insts: u64,
    /// Static copy instructions emitted.
    pub static_copies: u64,
    /// Strands formed / prematurely terminated.
    pub strands: u64,
    /// Premature strand terminations.
    pub terminations: u64,
    /// Static translated code bytes installed in the cache.
    pub translated_code_bytes: u64,
    /// Modelled DBT overhead in Alpha instructions (§4.2).
    pub translation_overhead: u64,
    /// Modelled interpretation overhead in Alpha instructions.
    pub interpretation_overhead: u64,
    /// Translation-cache flushes performed (phase-change policy).
    pub cache_flushes: u64,
    /// Fragments checked by the install validator.
    pub fragments_verified: u64,
    /// Wall time spent in the install validator, in nanoseconds.
    pub verify_nanos: u64,
    /// Translations refused under [`OnViolation::Reject`].
    pub verify_rejected: u64,
    /// Fragments clock-evicted under the cache budget.
    pub evictions: u64,
    /// Fragments invalidated by guest stores into their source pages.
    pub smc_invalidations: u64,
    /// Degradation-ladder transitions (each region counts once per level
    /// it descends).
    pub demotions: u64,
    /// Regions that reached the bottom of the ladder (interpret-only).
    pub blacklisted: u64,
    /// Engine dispatches preempted by the watchdog fuel budget.
    pub fuel_preemptions: u64,
    /// Direct-link sites un-patched back to slow-path exits by precise
    /// invalidation.
    pub unlinked_sites: u64,
    /// Instructions interpreted before the first fragment install — the
    /// unavoidable cold-start share of `interpreted`, excluded from
    /// [`VmStats::interp_fallback_ratio`] so the ratio reflects
    /// steady-state fallback only.
    pub warmup_interpreted: u64,
    /// Wall nanoseconds the guest was stalled waiting on translation
    /// (synchronous translations, plus blocking waits on an in-flight
    /// background translation of a re-heated region).
    pub translate_stall_nanos: u64,
    /// Total wall nanoseconds of translation + verification work done on
    /// behalf of this VM, wherever it ran. With background translation
    /// this exceeds [`VmStats::translate_stall_nanos`] — the difference
    /// is work the pipeline hid from the guest.
    pub translate_wall_nanos: u64,
    /// Warm-start installs: fragments taken pre-translated (and
    /// pre-verified) from the shared [`FragmentStore`].
    pub warm_hits: u64,
    /// Shared-store lookups that missed and fell back to translation.
    pub warm_misses: u64,
    /// Fragments this VM published to the shared store.
    pub warm_stores: u64,
    /// Background translations installed at a safe point.
    pub async_installs: u64,
    /// Background translations dropped at their safe point (stale epoch,
    /// demoted or blacklisted region, SMC hit, validator rejection, or a
    /// chaos-injected drop).
    pub async_dropped: u64,
    /// Dynamic engine statistics.
    pub engine: crate::engine::EngineStats,
    /// Static usage-category counts across all translations.
    pub static_categories: CategoryCounts,
    /// Static oracle-boundary category counts (paper's [28] comparison).
    pub oracle_categories: CategoryCounts,
}

impl VmStats {
    /// Dynamic I-ISA instructions per retired V-ISA instruction
    /// (Table 2: "relative number of dynamic instructions"; paper
    /// averages: basic 1.60, modified 1.36).
    pub fn dynamic_expansion(&self) -> f64 {
        if self.engine.v_insts == 0 {
            0.0
        } else {
            self.engine.executed as f64 / self.engine.v_insts as f64
        }
    }

    /// Percentage of executed instructions that are copies (Table 2;
    /// paper averages: basic 17.7%, modified 3.1%).
    pub fn copy_pct(&self) -> f64 {
        if self.engine.executed == 0 {
            0.0
        } else {
            self.engine.copies_executed as f64 * 100.0 / self.engine.executed as f64
        }
    }

    /// Translated static code bytes relative to the source code bytes
    /// (Table 2: "relative number of static instruction bytes"; paper
    /// averages: basic 1.17, modified 1.07).
    pub fn static_code_ratio(&self) -> f64 {
        if self.translated_src_insts == 0 {
            0.0
        } else {
            self.translated_code_bytes as f64 / (4.0 * self.translated_src_insts as f64)
        }
    }

    /// DBT instructions per translated source instruction (§4.2; paper
    /// average ≈ 1,125).
    pub fn overhead_per_translated_inst(&self) -> f64 {
        if self.translated_src_insts == 0 {
            0.0
        } else {
            self.translation_overhead as f64 / self.translated_src_insts as f64
        }
    }

    /// Fraction of retired V-ISA instructions that ran interpreted — the
    /// degradation metric: 0 is fully translated, 1 is interpret-only
    /// (everything evicted, invalidated or blacklisted).
    ///
    /// The instructions interpreted before the first fragment install
    /// ([`VmStats::warmup_interpreted`]) are excluded: every run pays
    /// that cold-start cost regardless of cache health, and counting it
    /// inflated the ratio badly for short workloads. A run that never
    /// installs anything has no steady state and reports 1.0 as before.
    pub fn interp_fallback_ratio(&self) -> f64 {
        let steady = self.interpreted.saturating_sub(self.warmup_interpreted);
        let total = steady + self.engine.v_insts;
        if total == 0 {
            0.0
        } else {
            steady as f64 / total as f64
        }
    }

    /// Guest-visible translation stall time, in seconds.
    pub fn translate_stall_seconds(&self) -> f64 {
        self.translate_stall_nanos as f64 / 1e9
    }

    /// Total translation + verification wall time, in seconds.
    pub fn translate_wall_seconds(&self) -> f64 {
        self.translate_wall_nanos as f64 / 1e9
    }
}

/// The co-designed VM. See the module documentation.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Assembler, Reg};
/// use ildp_core::{NullSink, Vm, VmConfig, VmExit};
///
/// let mut asm = Assembler::new(0x1_0000);
/// asm.lda_imm(Reg::A0, 200);
/// let top = asm.here("top");
/// asm.subq_imm(Reg::A0, 1, Reg::A0);
/// asm.bne(Reg::A0, top);
/// asm.halt();
/// let program = asm.finish()?;
///
/// let mut vm = Vm::new(VmConfig::default(), &program);
/// let exit = vm.run(10_000, &mut NullSink);
/// assert_eq!(exit, VmExit::Halted);
/// assert!(vm.stats().fragments > 0, "the loop must get translated");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Vm<'p> {
    config: VmConfig,
    program: &'p Program,
    /// Predecoded code segment driving the interpreter's fetches.
    decoded: DecodeCache,
    cpu: CpuState,
    mem: Memory,
    candidates: Candidates,
    cache: TranslationCache,
    engine: Engine,
    stats: VmStats,
    /// V-inst timestamps of recent fragment creations (flush policy).
    /// Meaningful only within `window_epoch`.
    recent_fragments: Vec<u64>,
    /// The cache epoch `recent_fragments` belongs to: an epoch bump from
    /// any source resets the flush window.
    window_epoch: u64,
    /// Degradation-ladder level per region entry V-address.
    demotion: HashMap<u64, u8>,
    /// SMC invalidations per region entry V-address (repeat offenders are
    /// demoted).
    smc_counts: HashMap<u64, u32>,
    /// Console bytes in emission order (interpreted + translated).
    output: Vec<u8>,
    /// Cache-derived stats carried over a snapshot restore:
    /// `finish_overheads` recomputes `translated_code_bytes`, `evictions`
    /// and `unlinked_sites` from the (fresh, empty) cache, so the totals
    /// accumulated before the restore are added back as baselines.
    base_code_bytes: u64,
    base_evictions: u64,
    base_unlinked: u64,
    /// The background translation pool (async mode), with the per-VM
    /// reply channel its workers answer on.
    pool: Option<Arc<TranslatePool>>,
    reply_tx: Sender<TranslateResponse>,
    reply_rx: Receiver<TranslateResponse>,
    /// Regions whose translation is in flight on the pool, keyed by entry
    /// V-address — the per-region dedup, plus the liveness facts captured
    /// at submit time that the safe-point install decision re-checks.
    in_flight: HashMap<u64, Pending>,
    /// Finished translations parked until their install point (the
    /// deterministic `install_delay` and scheduled-replay modes).
    staged: Vec<Staged>,
    /// Recorded install/drop schedule driving a deterministic replay of a
    /// background-translation run; `Some` switches `translate_at` to
    /// stage translations instead of submitting them.
    schedule: Option<VecDeque<ScheduledOp>>,
    /// Count-anchored install/drop events this run produced, for the
    /// record side of record/replay.
    bg_events: Vec<ReplayEvent>,
    /// The shared warm-start fragment store, when attached.
    store: Option<Arc<FragmentStore>>,
    /// Store keys of fragments this VM installed, so SMC invalidation and
    /// demotion also evict the shared copy.
    store_keys: HashMap<u64, ArtifactKey>,
}

/// Liveness facts captured when a region's translation leaves the
/// execution thread; the install decision re-checks them at the safe
/// point and drops the translation if any moved.
#[derive(Clone, Copy, Debug)]
struct Pending {
    level: u8,
    epoch: u64,
    smc: u32,
    translator: Translator,
    key: Option<ArtifactKey>,
}

/// A finished translation waiting for its install point.
#[derive(Debug)]
struct Staged {
    vstart: u64,
    /// Install at the first safe point with `v_instructions() >= anchor`
    /// (`install_delay` mode; unused under a replay schedule).
    anchor: u64,
    pending: Pending,
    code: TranslatedCode,
    verdict: Result<(), String>,
    verify_nanos: u64,
}

/// One recorded background-translation outcome to reproduce.
#[derive(Clone, Copy, Debug)]
struct ScheduledOp {
    vstart: u64,
    at_v_insts: u64,
    install: bool,
}

impl<'p> Vm<'p> {
    /// Creates a VM with the program loaded and the PC at its entry.
    pub fn new(config: VmConfig, program: &'p Program) -> Vm<'p> {
        let (cpu, mem) = program.load();
        // The VmConfig-level fuel knob flows into the engine config; an
        // explicit EngineConfig::fuel wins if both are set.
        let engine_config = EngineConfig {
            fuel: config.engine.fuel.or(config.fuel),
            ..config.engine
        };
        let (reply_tx, reply_rx) = channel();
        let pool = config
            .async_translate
            .then(|| Arc::clone(TranslatePool::global()));
        let store = config
            .shared_cache
            .then(|| Arc::clone(FragmentStore::global()));
        Vm {
            config,
            program,
            decoded: DecodeCache::new(program),
            cpu,
            mem,
            candidates: Candidates::new(),
            cache: TranslationCache::new(),
            engine: Engine::new(engine_config),
            stats: VmStats::default(),
            recent_fragments: Vec::new(),
            window_epoch: 0,
            demotion: HashMap::new(),
            smc_counts: HashMap::new(),
            output: Vec::new(),
            base_code_bytes: 0,
            base_evictions: 0,
            base_unlinked: 0,
            pool,
            reply_tx,
            reply_rx,
            in_flight: HashMap::new(),
            staged: Vec::new(),
            schedule: None,
            bg_events: Vec::new(),
            store,
            store_keys: HashMap::new(),
        }
    }

    /// Captures the complete resumable state as a [`Snapshot`].
    ///
    /// Must be taken at a fragment boundary — i.e. while [`run`](Vm::run)
    /// is not executing (any return from `run` is one): there the GPR
    /// file is architecturally complete, every accumulator is dead, and
    /// the dual-RAS is predictor-only state (misses fall back to
    /// dispatch), so none of the engine internals need capturing. The
    /// translation cache is deliberately omitted — a restored VM starts
    /// cold and retranslates on demand; the entry addresses of live
    /// fragments are recorded as re-heat hints instead.
    pub fn snapshot(&self) -> Snapshot {
        let mut pages: Vec<(u64, Vec<u8>)> = self
            .mem
            .pages()
            .filter(|(_, bytes)| bytes.iter().any(|&b| b != 0))
            .map(|(n, bytes)| (n, bytes.to_vec()))
            .collect();
        pages.sort_unstable_by_key(|&(n, _)| n);
        let mut candidates: Vec<(u64, u32)> = self.candidates.counters().collect();
        candidates.sort_unstable();
        let mut translated: Vec<u64> = self.cache.fragments().map(|f| f.vstart).collect();
        translated.sort_unstable();
        let mut demotion: Vec<(u64, u8)> = self.demotion.iter().map(|(&a, &l)| (a, l)).collect();
        demotion.sort_unstable();
        let mut smc_counts: Vec<(u64, u32)> =
            self.smc_counts.iter().map(|(&a, &c)| (a, c)).collect();
        smc_counts.sort_unstable();
        // The captured stats are brought current exactly as
        // `finish_overheads` would, so a snapshot taken between `run`
        // calls is self-consistent even if the caller poked at the cache.
        let mut stats = self.stats.clone();
        stats.interpretation_overhead = stats.interpreted * self.config.cost.interp_cost_per_inst();
        stats.translated_code_bytes = self.base_code_bytes + self.cache.total_code_bytes();
        stats.evictions = self.base_evictions + self.cache.evictions();
        stats.unlinked_sites = self.base_unlinked + self.cache.unpatches();
        stats.engine = self.engine.stats.clone();
        Snapshot {
            program_digest: program_digest(self.program),
            v_insts: self.v_instructions(),
            pc: self.cpu.pc,
            regs: self.cpu.registers(),
            pages,
            output: self.output.clone(),
            candidates,
            translated,
            demotion,
            smc_counts,
            stats,
        }
    }

    /// Reconstructs a VM from a snapshot, onto a fresh (cold) translation
    /// cache. The program must be the one the snapshot was taken from
    /// (checked by digest). Continuing the restored VM retires the exact
    /// same architected instruction stream as the uninterrupted run;
    /// statistics continue cumulatively from the snapshot, so ratios like
    /// [`VmStats::interp_fallback_ratio`] remain correct across the
    /// resume.
    pub fn restore(
        config: VmConfig,
        program: &'p Program,
        snap: &Snapshot,
    ) -> Result<Vm<'p>, SnapshotError> {
        let expected = program_digest(program);
        if snap.program_digest != expected {
            return Err(SnapshotError::ProgramMismatch {
                expected,
                actual: snap.program_digest,
            });
        }
        let mut vm = Vm::new(config, program);
        vm.cpu = CpuState::with_registers(snap.pc, &snap.regs);
        vm.mem = snap.to_memory();
        // `bump` fires exactly once, when a counter *reaches* the
        // threshold — so every restored counter is clamped one below it.
        // Regions that were translated at snapshot time are primed to
        // re-heat on their next execution; everything else keeps its
        // progress (capped so over-threshold counters from translated or
        // blacklisted regions can fire again rather than sticking).
        let reheat = config.profile.threshold.saturating_sub(1);
        for &(vaddr, count) in &snap.candidates {
            vm.candidates.set(vaddr, count.min(reheat));
        }
        for &vstart in &snap.translated {
            vm.candidates.set(vstart, reheat);
        }
        vm.demotion = snap.demotion.iter().copied().collect();
        vm.smc_counts = snap.smc_counts.iter().copied().collect();
        vm.output = snap.output.clone();
        vm.stats = snap.stats.clone();
        vm.engine.stats = snap.stats.engine.clone();
        vm.base_code_bytes = snap.stats.translated_code_bytes;
        vm.base_evictions = snap.stats.evictions;
        vm.base_unlinked = snap.stats.unlinked_sites;
        Ok(vm)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// The translation cache (inspection).
    pub fn cache(&self) -> &TranslationCache {
        &self.cache
    }

    /// Mutable access to the translation cache, for fault-injection
    /// harnesses and external cache management. Invalidation should go
    /// through [`invalidate_fragment`](Vm::invalidate_fragment) /
    /// [`notify_code_write`](Vm::notify_code_write), which also maintain
    /// the engine-side links and profile counters.
    pub fn cache_mut(&mut self) -> &mut TranslationCache {
        &mut self.cache
    }

    /// The architected CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// The guest memory (inspection, e.g. differential testing).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Console output produced so far (interpreted + translated), in
    /// emission order.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Total V-ISA instructions executed so far (interpreted or
    /// translated), excluding architectural NOPs — every execution mode
    /// elides them from the count, so this is a pure function of the
    /// architected position regardless of what was translated when.
    /// Snapshot/replay lockstep is count-anchored on exactly this value.
    pub fn v_instructions(&self) -> u64 {
        self.stats.interpreted + self.engine.stats.v_insts
    }

    /// The translator / profiler pair for one degradation level. Level 0
    /// is the configured pair; demoted regions lose the optional
    /// optimizations — predictive chaining (sw-pred, dual-RAS) and memory
    /// fusion — and translate shorter superblocks, the leaner tier the
    /// ladder retries before blacklisting.
    fn translation_tier(&self, level: u8) -> (Translator, ProfileConfig) {
        if level == 0 {
            (self.config.translator, self.config.profile)
        } else {
            (
                Translator {
                    chain: ChainPolicy::NoPred,
                    fuse_memory: false,
                    ..self.config.translator
                },
                ProfileConfig {
                    max_superblock: self.config.profile.max_superblock.min(32),
                    ..self.config.profile
                },
            )
        }
    }

    /// Descends one degradation-ladder level for the region at `vstart`
    /// and resets its profile counter so it can re-heat into the leaner
    /// tier (or, at the bottom, stay interpreted).
    fn demote(&mut self, vstart: u64) {
        let level = self.demotion.entry(vstart).or_insert(0);
        if *level >= self.config.max_demotions {
            return;
        }
        *level += 1;
        self.stats.demotions += 1;
        if *level >= self.config.max_demotions {
            self.stats.blacklisted += 1;
        }
        self.candidates.reset(vstart);
        // A demoted region's published translation came from a tier we no
        // longer trust for it; other VMs must not warm-start from it.
        self.invalidate_store_key(vstart);
    }

    /// Evicts the shared-store copy of this VM's fragment at `vstart`, if
    /// it published one — keeps the warm-start store coherent with SMC
    /// invalidation and ladder demotion.
    fn invalidate_store_key(&mut self, vstart: u64) {
        if let Some(key) = self.store_keys.remove(&vstart) {
            if let Some(store) = &self.store {
                store.remove(&key);
            }
        }
    }

    /// Precisely invalidates one fragment: the cache slot and every
    /// incoming direct link (cache side), the dual-RAS links (engine
    /// side), and the region's profile counter so it can re-heat. Returns
    /// the fragment's entry V-address, or `None` if the id was already
    /// dead.
    pub fn invalidate_fragment(&mut self, id: FragmentId) -> Option<u64> {
        let vstart = self.cache.invalidate(id)?;
        self.engine.unlink_fragment(id);
        self.candidates.reset(vstart);
        self.invalidate_store_key(vstart);
        Some(vstart)
    }

    /// Notifies the VM that guest memory in `[addr, addr + len)` was
    /// written: every fragment whose source code shares a page with the
    /// range is invalidated (self-modifying-code response), and regions
    /// invalidated repeatedly are demoted down the ladder. The engine and
    /// interpreter SMC detection paths both land here; it is public so an
    /// embedder can report external code writes (DMA, another core).
    pub fn notify_code_write(&mut self, addr: u64, len: u64) {
        for id in self.cache.fragments_on_write(addr, len) {
            if let Some(vstart) = self.invalidate_fragment(id) {
                self.stats.smc_invalidations += 1;
                let n = {
                    let n = self.smc_counts.entry(vstart).or_insert(0);
                    *n += 1;
                    *n
                };
                if n >= 2 {
                    self.demote(vstart);
                }
            }
        }
    }

    fn translate_at(&mut self, vaddr: u64) -> bool {
        debug_assert_eq!(self.cpu.pc, vaddr);
        if self.cache.lookup(vaddr).is_some() {
            return true;
        }
        // A finished translation is already parked for this region; keep
        // interpreting until its install point arrives.
        if self.staged.iter().any(|s| s.vstart == vaddr) {
            return false;
        }
        // The region re-heated while its translation is in flight: the
        // slack bound. Block on the pool rather than re-collecting.
        if self.in_flight.contains_key(&vaddr) {
            return self.await_in_flight(vaddr);
        }
        let level = self.demotion.get(&vaddr).copied().unwrap_or(0);
        if level >= self.config.max_demotions {
            // Bottom of the ladder: this region stays interpreted.
            return false;
        }
        let (translator, profile) = self.translation_tier(level);
        match collect_superblock_with_output(
            &mut self.cpu,
            &mut self.mem,
            self.program,
            &profile,
            &mut self.output,
        ) {
            Ok(sb) if !sb.is_empty() => {
                // Collection executed the path once: count it as
                // interpreted work (the paper's collection runs during
                // interpretation). Counted here — identically in every
                // pipeline mode — so async and sync runs retire the same
                // count-anchored instruction stream.
                self.stats.interpreted += sb.len() as u64;
                let mut pending = Pending {
                    level,
                    epoch: self.cache.epoch(),
                    smc: self.smc_counts.get(&vaddr).copied().unwrap_or(0),
                    translator,
                    key: None,
                };
                // Warm start: if another VM already published this exact
                // translation, install it without translating at all.
                if let Some(store) = self.store.clone() {
                    let key = artifact_key(self.program, &sb, &translator);
                    pending.key = Some(key);
                    if let Some(art) = store.get(&key) {
                        self.stats.warm_hits += 1;
                        self.install_artifact(art, key);
                        return true;
                    }
                    self.stats.warm_misses += 1;
                }
                if self.schedule.is_some() {
                    // Deterministic replay of a recorded background run:
                    // translate inline, park the result, and let the
                    // recorded count-anchored schedule decide when (and
                    // whether) it installs.
                    let (code, verdict, wall, verify_nanos) =
                        translate_job(&sb, &translator, self.config.validator);
                    self.stats.translate_wall_nanos += wall;
                    self.staged.push(Staged {
                        vstart: vaddr,
                        anchor: 0,
                        pending,
                        code,
                        verdict,
                        verify_nanos,
                    });
                    self.candidates.reset(vaddr);
                    return false;
                }
                if let Some(delay) = self.config.install_delay {
                    let (code, verdict, wall, verify_nanos) =
                        translate_job(&sb, &translator, self.config.validator);
                    self.stats.translate_wall_nanos += wall;
                    self.staged.push(Staged {
                        vstart: vaddr,
                        anchor: self.v_instructions() + delay,
                        pending,
                        code,
                        verdict,
                        verify_nanos,
                    });
                    self.candidates.reset(vaddr);
                    return false;
                }
                if let Some(pool) = self.pool.clone() {
                    pool.submit(TranslateRequest {
                        vstart: vaddr,
                        sb,
                        translator,
                        validator: self.config.validator,
                        reply: self.reply_tx.clone(),
                    });
                    self.in_flight.insert(vaddr, pending);
                    // Reset the counter so the region must re-heat to
                    // reach the blocking wait above: bounds how far the
                    // interpreter can run ahead of a pending install.
                    self.candidates.reset(vaddr);
                    return false;
                }
                // Synchronous pipeline: translate and verify on the
                // execution thread — the guest stalls for all of it.
                let (code, verdict, wall, verify_nanos) =
                    translate_job(&sb, &translator, self.config.validator);
                self.stats.translate_wall_nanos += wall;
                self.stats.translate_stall_nanos += wall;
                if self.config.validator.is_some() {
                    // Verifier time is accounted separately from the
                    // paper's translation-overhead model: it is a
                    // debugging aid, not part of the modeled DBT cost.
                    self.stats.verify_nanos += verify_nanos;
                    self.stats.fragments_verified += 1;
                }
                if let Err(msg) = verdict {
                    match self.config.on_violation {
                        OnViolation::Panic => panic!(
                            "translation validator rejected fragment at \
                             {:#x}: {msg}",
                            code.vstart
                        ),
                        OnViolation::Reject => {
                            self.stats.verify_rejected += 1;
                            // Ladder: retry without the optional
                            // optimizations, then blacklist.
                            self.demote(code.vstart);
                            return false;
                        }
                    }
                }
                self.install_translation(code, translator, pending.key);
                true
            }
            Ok(_) => false,
            Err((pc, _trap)) => {
                // Trap during collection: abandon the superblock; the trap
                // will be re-raised by ordinary interpretation.
                self.cpu.pc = pc;
                false
            }
        }
    }

    /// Installs a translation produced by this VM (synchronously or at a
    /// background safe point): merges its static statistics, publishes it
    /// to the shared store when one is attached, installs it in the
    /// cache, and enforces the cache budget.
    fn install_translation(
        &mut self,
        code: TranslatedCode,
        translator: Translator,
        key: Option<ArtifactKey>,
    ) {
        self.maybe_flush();
        self.stats.fragments += 1;
        self.stats.translated_src_insts += code.src_inst_count as u64;
        self.stats.emitted_insts += code.insts.len() as u64;
        self.stats.static_copies += code.stats.copies as u64;
        self.stats.strands += code.stats.strands as u64;
        self.stats.terminations += code.stats.terminations as u64;
        self.stats.static_categories.merge(&code.stats.categories);
        self.stats
            .oracle_categories
            .merge(&code.stats.oracle_categories);
        self.stats.translation_overhead += self
            .config
            .cost
            .fragment_cost(code.src_inst_count as u64, code.insts.len() as u64);
        if let (Some(store), Some(key)) = (self.store.clone(), key) {
            let artifact = FragmentArtifact::from_translation(&code, translator.form);
            if store.put(key, &artifact) {
                self.stats.warm_stores += 1;
            }
            self.store_keys.insert(code.vstart, key);
        }
        if self.stats.warmup_interpreted == 0 {
            self.stats.warmup_interpreted = self.stats.interpreted;
        }
        let id = self.cache.install(
            code.vstart,
            translator.form,
            code.insts,
            code.meta,
            code.src_inst_count,
            code.recovery,
        );
        self.enforce_cache_budget(id);
    }

    /// Installs a pre-translated, pre-verified fragment taken from the
    /// shared store. No translation happened here, so no
    /// `translation_overhead` is charged — that is the point of the warm
    /// start — but the static code statistics still merge so Table 2
    /// ratios stay meaningful.
    fn install_artifact(&mut self, artifact: FragmentArtifact, key: ArtifactKey) {
        self.maybe_flush();
        self.stats.fragments += 1;
        self.stats.translated_src_insts += artifact.src_inst_count as u64;
        self.stats.emitted_insts += artifact.insts.len() as u64;
        self.stats.static_copies += artifact.copies as u64;
        self.stats.strands += artifact.strands as u64;
        self.stats.terminations += artifact.terminations as u64;
        self.stats.static_categories.merge(&artifact.categories);
        self.stats
            .oracle_categories
            .merge(&artifact.oracle_categories);
        self.store_keys.insert(artifact.vstart, key);
        if self.stats.warmup_interpreted == 0 {
            self.stats.warmup_interpreted = self.stats.interpreted;
        }
        let id = self.cache.install(
            artifact.vstart,
            artifact.form,
            artifact.insts,
            artifact.meta,
            artifact.src_inst_count,
            artifact.recovery,
        );
        self.enforce_cache_budget(id);
    }

    fn enforce_cache_budget(&mut self, just_installed: FragmentId) {
        if let Some(budget) = self.config.cache_budget {
            for (fid, vstart) in self.cache.enforce_budget(budget, just_installed) {
                self.engine.unlink_fragment(fid);
                self.candidates.reset(vstart);
                self.invalidate_store_key(vstart);
            }
        }
    }

    /// The safe-point install decision for a finished background
    /// translation: re-checks the liveness facts captured at submit time
    /// and installs, or drops, accordingly. `forced_drop` reproduces a
    /// recorded drop whose cause was outside these checks. Every outcome
    /// is recorded as a count-anchored [`ReplayEvent`].
    fn resolve_background(
        &mut self,
        vstart: u64,
        pending: Pending,
        code: TranslatedCode,
        verdict: Result<(), String>,
        verify_nanos: u64,
        forced_drop: bool,
    ) {
        if self.config.validator.is_some() {
            self.stats.verify_nanos += verify_nanos;
            self.stats.fragments_verified += 1;
        }
        let at_v_insts = self.v_instructions();
        let level_now = self.demotion.get(&vstart).copied().unwrap_or(0);
        let smc_now = self.smc_counts.get(&vstart).copied().unwrap_or(0);
        let stale = forced_drop
            || self.cache.lookup(vstart).is_some()
            || level_now != pending.level
            || level_now >= self.config.max_demotions
            || self.cache.epoch() != pending.epoch
            || smc_now != pending.smc;
        if stale {
            self.stats.async_dropped += 1;
            self.candidates.reset(vstart);
            self.bg_events.push(ReplayEvent::BgDrop {
                fragment_vstart: vstart,
                at_v_insts,
            });
            return;
        }
        if let Err(msg) = verdict {
            match self.config.on_violation {
                OnViolation::Panic => panic!(
                    "translation validator rejected fragment at {:#x}: {msg}",
                    code.vstart
                ),
                OnViolation::Reject => {
                    self.stats.verify_rejected += 1;
                    self.demote(vstart);
                    self.stats.async_dropped += 1;
                    self.bg_events.push(ReplayEvent::BgDrop {
                        fragment_vstart: vstart,
                        at_v_insts,
                    });
                    return;
                }
            }
        }
        self.stats.async_installs += 1;
        self.bg_events.push(ReplayEvent::BgInstall {
            fragment_vstart: vstart,
            at_v_insts,
        });
        self.install_translation(code, pending.translator, pending.key);
    }

    fn handle_response(&mut self, resp: TranslateResponse) {
        // A response whose region is no longer in flight was superseded
        // (e.g. dropped by a blocking wait that gave up on it).
        let Some(pending) = self.in_flight.remove(&resp.vstart) else {
            return;
        };
        self.stats.translate_wall_nanos += resp.wall_nanos;
        self.resolve_background(
            resp.vstart,
            pending,
            resp.code,
            resp.verdict,
            resp.verify_nanos,
            false,
        );
    }

    /// Blocks until the in-flight translation for `vaddr` resolves (other
    /// regions' replies arriving first resolve too — this is a safe
    /// point). The wait is the guest-visible stall the pipeline could not
    /// hide, accounted in [`VmStats::translate_stall_nanos`].
    fn await_in_flight(&mut self, vaddr: u64) -> bool {
        let t0 = std::time::Instant::now();
        while self.in_flight.contains_key(&vaddr) {
            match self
                .reply_rx
                .recv_timeout(std::time::Duration::from_secs(10))
            {
                Ok(resp) => self.handle_response(resp),
                Err(_) => break,
            }
        }
        if self.in_flight.remove(&vaddr).is_some() {
            // Worker lost or pathologically slow: give the region its
            // translation slot back so it can retry.
            self.stats.async_dropped += 1;
            self.candidates.reset(vaddr);
            self.bg_events.push(ReplayEvent::BgDrop {
                fragment_vstart: vaddr,
                at_v_insts: self.v_instructions(),
            });
        }
        self.stats.translate_stall_nanos += t0.elapsed().as_nanos() as u64;
        self.cache.lookup(vaddr).is_some()
    }

    /// The top-of-loop safe point: drains finished background
    /// translations, and resolves parked translations whose install point
    /// (recorded schedule, or deterministic delay anchor) has arrived.
    fn service_background(&mut self) {
        while let Ok(resp) = self.reply_rx.try_recv() {
            self.handle_response(resp);
        }
        if self.schedule.is_some() {
            let now = self.v_instructions();
            while let Some(op) = self.schedule.as_ref().and_then(|q| q.front().copied()) {
                if op.at_v_insts > now {
                    break;
                }
                self.schedule.as_mut().unwrap().pop_front();
                // A scheduled op with no parked translation refers to a
                // region a replayed chaos event already disposed of.
                let Some(i) = self.staged.iter().position(|s| s.vstart == op.vstart) else {
                    continue;
                };
                let s = self.staged.remove(i);
                self.resolve_background(
                    s.vstart,
                    s.pending,
                    s.code,
                    s.verdict,
                    s.verify_nanos,
                    !op.install,
                );
            }
        } else if self.config.install_delay.is_some() {
            let now = self.v_instructions();
            while let Some(i) = self.staged.iter().position(|s| s.anchor <= now) {
                let s = self.staged.remove(i);
                self.resolve_background(
                    s.vstart,
                    s.pending,
                    s.code,
                    s.verdict,
                    s.verify_nanos,
                    false,
                );
            }
        }
    }

    /// Switches the VM to deterministic scheduled-install mode, replaying
    /// the background install/drop decisions recorded in `events`
    /// ([`ReplayEvent::BgInstall`] / [`ReplayEvent::BgDrop`], anchored on
    /// [`Vm::v_instructions`]). Translations are performed inline at
    /// collection time but install only when their recorded anchor is
    /// reached, in recorded order — reproducing an asynchronous run
    /// bit-identically on a synchronous VM.
    pub fn set_install_schedule(&mut self, events: &[ReplayEvent]) {
        let ops = events
            .iter()
            .filter_map(|e| match *e {
                ReplayEvent::BgInstall {
                    fragment_vstart,
                    at_v_insts,
                } => Some(ScheduledOp {
                    vstart: fragment_vstart,
                    at_v_insts,
                    install: true,
                }),
                ReplayEvent::BgDrop {
                    fragment_vstart,
                    at_v_insts,
                } => Some(ScheduledOp {
                    vstart: fragment_vstart,
                    at_v_insts,
                    install: false,
                }),
                _ => None,
            })
            .collect();
        self.schedule = Some(ops);
    }

    /// The count-anchored background install/drop events recorded so far
    /// (record side of record/replay).
    pub fn bg_events(&self) -> &[ReplayEvent] {
        &self.bg_events
    }

    /// Drains the recorded background events (see [`Vm::bg_events`]).
    pub fn take_bg_events(&mut self) -> Vec<ReplayEvent> {
        std::mem::take(&mut self.bg_events)
    }

    /// Attaches a shared warm-start fragment store (see
    /// [`VmConfig::shared_cache`], which attaches the process-global one).
    /// Must be called before the run starts translating.
    pub fn attach_store(&mut self, store: Arc<FragmentStore>) {
        self.store = Some(store);
    }

    /// Attaches a translation pool, enabling background translation even
    /// if [`VmConfig::async_translate`] was off at construction.
    pub fn attach_pool(&mut self, pool: Arc<TranslatePool>) {
        self.pool = Some(pool);
    }

    /// Entry V-addresses of translations parked for a later install point
    /// (fault-injection harnesses pick drop victims from these).
    pub fn staged_vstarts(&self) -> Vec<u64> {
        self.staged.iter().map(|s| s.vstart).collect()
    }

    /// Drops a parked translation before it installs (chaos injection:
    /// the translation that never arrives). Returns whether one was
    /// parked for `vstart`. The region's profile counter resets so it can
    /// re-heat.
    pub fn drop_staged(&mut self, vstart: u64) -> bool {
        let Some(i) = self.staged.iter().position(|s| s.vstart == vstart) else {
            return false;
        };
        self.staged.remove(i);
        self.stats.async_dropped += 1;
        self.candidates.reset(vstart);
        true
    }

    /// Runs until halt, trap, or `budget` V-ISA instructions.
    ///
    /// Monomorphized over the sink (see [`TraceSink::TRACING`]): running
    /// with [`crate::NullSink`] compiles the trace machinery out of the
    /// engine's hot loop.
    pub fn run<S: TraceSink>(&mut self, budget: u64, sink: &mut S) -> VmExit {
        loop {
            // Fragment-boundary safe point: architected state is complete
            // here, so finished background translations install now.
            self.service_background();
            if self.v_instructions() >= budget {
                self.finish_overheads();
                return VmExit::Budget;
            }
            // Execute translated code when the current PC has a fragment.
            if let Some(fid) = self.cache.lookup(self.cpu.pc) {
                let entry_vstart = self.cpu.pc;
                let engine_budget = budget.saturating_sub(self.stats.interpreted);
                let engine_exit = self.engine.run(
                    &mut self.cache,
                    fid,
                    &mut self.cpu,
                    &mut self.mem,
                    engine_budget,
                    sink,
                );
                self.output.append(&mut self.engine.output);
                match engine_exit {
                    FragExit::NotTranslated { vtarget } => {
                        self.cpu.pc = vtarget;
                        // Fragment exit targets are superblock start
                        // candidates (paper §3.1).
                        if self.candidates.bump(vtarget, self.config.profile.threshold) {
                            self.translate_at(vtarget);
                        }
                    }
                    FragExit::Halt => {
                        self.finish_overheads();
                        return VmExit::Halted;
                    }
                    FragExit::Budget => {
                        self.finish_overheads();
                        return VmExit::Budget;
                    }
                    FragExit::Trap { vaddr, trap, state } => {
                        self.finish_overheads();
                        return VmExit::Trapped { vaddr, trap, state };
                    }
                    FragExit::SmcStore {
                        addr,
                        len,
                        vaddr,
                        state,
                    } => {
                        // The engine stopped *before* the store with
                        // recovered precise state; re-raise from the
                        // store's V-address so the write executes
                        // interpretively against the freshly-invalidated
                        // cache (no livelock: invalidation unwatches the
                        // page).
                        self.cpu.set_registers(&state);
                        self.cpu.pc = vaddr;
                        self.notify_code_write(addr, len);
                    }
                    FragExit::Preempted { vtarget } => {
                        // The fragment chain exceeded its fuel budget
                        // without yielding to the dispatcher: demote the
                        // entry region and drop its fragment so the next
                        // heat-up takes the leaner tier.
                        self.cpu.pc = vtarget;
                        self.stats.fuel_preemptions += 1;
                        self.demote(entry_vstart);
                        if let Some(id) = self.cache.lookup(entry_vstart) {
                            self.invalidate_fragment(id);
                        }
                    }
                    FragExit::Fault { error } => {
                        self.finish_overheads();
                        return VmExit::Fault { error };
                    }
                }
                continue;
            }
            // Otherwise interpret one instruction.
            match interp_step(
                &mut self.cpu,
                &mut self.mem,
                &self.decoded,
                &mut self.candidates,
                &self.config.profile,
                &mut self.stats.interpreted,
                &mut self.output,
                Some(&self.cache),
            ) {
                InterpEvent::Continue => {}
                InterpEvent::Halted => {
                    self.finish_overheads();
                    return VmExit::Halted;
                }
                InterpEvent::Hot { vaddr } => {
                    self.translate_at(vaddr);
                }
                InterpEvent::Trapped { vaddr, trap } => {
                    self.finish_overheads();
                    return VmExit::Trapped {
                        vaddr,
                        trap,
                        state: Box::new(self.cpu.registers()),
                    };
                }
                InterpEvent::SmcStore { addr, len } => {
                    // The interpreted store has already completed and
                    // architected state is current; just invalidate the
                    // touched fragments.
                    self.notify_code_write(addr, len);
                }
            }
        }
    }

    /// Dynamo-style phase detection: flush when fragment creation spikes.
    fn maybe_flush(&mut self) {
        let Some(policy) = self.config.flush else {
            return;
        };
        // The window counters describe one cache epoch. If the epoch
        // moved underneath us (our own flush below, or an external
        // `cache_mut().flush()`), stale timestamps from before the flush
        // would re-trigger immediately and double-flush back-to-back
        // phase changes — reset the window atomically with the epoch.
        if self.window_epoch != self.cache.epoch() {
            self.window_epoch = self.cache.epoch();
            self.recent_fragments.clear();
        }
        let now = self.v_instructions();
        self.recent_fragments.push(now);
        let cutoff = now.saturating_sub(policy.window);
        self.recent_fragments.retain(|&t| t >= cutoff);
        if self.recent_fragments.len() as u32 > policy.max_new_fragments {
            self.cache.flush();
            self.stats.cache_flushes += 1;
            self.window_epoch = self.cache.epoch();
            self.recent_fragments.clear();
        }
    }

    fn finish_overheads(&mut self) {
        self.stats.interpretation_overhead =
            self.stats.interpreted * self.config.cost.interp_cost_per_inst();
        // The `base_*` offsets are nonzero only on a snapshot-restored
        // VM, whose cache restarted from cold: they carry the totals
        // accumulated before the restore.
        self.stats.translated_code_bytes = self.base_code_bytes + self.cache.total_code_bytes();
        self.stats.evictions = self.base_evictions + self.cache.evictions();
        self.stats.unlinked_sites = self.base_unlinked + self.cache.unpatches();
        self.stats.engine = self.engine.stats.clone();
    }
}

/// Interprets `program` directly, emitting the **original-program** trace
/// (the paper's "original" superscalar configuration and the native-Alpha
/// bars of Figures 4, 6 and 8).
///
/// Returns the exit condition and the number of instructions traced.
pub fn trace_original<S: TraceSink>(program: &Program, budget: u64, sink: &mut S) -> (VmExit, u64) {
    use alpha_isa::{step, AlignPolicy, BranchOp, Control, Inst};
    let decoded = DecodeCache::new(program);
    let (mut cpu, mut mem) = program.load();
    let mut count = 0u64;
    loop {
        if count >= budget {
            return (VmExit::Budget, count);
        }
        let pc = cpu.pc;
        let inst = match decoded.fetch(pc) {
            Ok(i) => i,
            Err(trap) => {
                return (
                    VmExit::Trapped {
                        vaddr: pc,
                        trap,
                        state: Box::new(cpu.registers()),
                    },
                    count,
                )
            }
        };
        let before_regs = cpu.clone();
        let outcome = match step(&mut cpu, &mut mem, inst, AlignPolicy::Enforce) {
            Ok(o) => o,
            Err(trap) => {
                return (
                    VmExit::Trapped {
                        vaddr: pc,
                        trap,
                        state: Box::new(cpu.registers()),
                    },
                    count,
                )
            }
        };
        count += 1;
        let mut d = DynInst::alu(pc, 4);
        d.next_pc = outcome.next_pc;
        d.class = match inst {
            Inst::Operate { op, .. } if op.is_multiply() => InstClass::IntMul,
            Inst::Operate { .. } => InstClass::IntAlu,
            Inst::Mem { op, .. } if op.is_load() => InstClass::Load,
            Inst::Mem { op, .. } if op.is_store() => InstClass::Store,
            Inst::Mem { .. } => InstClass::IntAlu,
            Inst::Branch {
                op: BranchOp::Bsr, ..
            } => InstClass::Call,
            Inst::Branch {
                op: BranchOp::Br, ..
            } => InstClass::Branch,
            Inst::Branch { .. } => InstClass::CondBranch,
            Inst::Jump { kind, .. } => match kind {
                alpha_isa::JumpKind::Ret => InstClass::Return,
                alpha_isa::JumpKind::Jsr => InstClass::IndirectCall,
                _ => InstClass::IndirectJump,
            },
            Inst::CallPal { .. } => InstClass::IntAlu,
            // Traps at `step` above; never retires into the trace.
            Inst::Unimplemented { .. } => unreachable!("unimplemented instructions trap"),
        };
        let mut srcs = [None; 3];
        for (k, r) in inst.sources().iter().enumerate() {
            srcs[k] = Some(r.number());
        }
        d.srcs = srcs;
        d.dst = inst.dest().map(|r| r.number());
        d.mem_addr = outcome.mem.map(|m| m.addr);
        d.taken = outcome.control.is_taken();
        if let Control::Indirect { target, .. } = outcome.control {
            d.v_target = target;
        }
        let _ = before_regs;
        sink.retire(&d);
        if outcome.control == Control::Halt {
            return (VmExit::Halted, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullSink;
    use crate::translate::ChainPolicy;
    use alpha_isa::{run_to_halt, AlignPolicy, Assembler, Reg};
    use ildp_isa::IsaForm;

    fn loop_program(iters: i16) -> Program {
        let mut asm = Assembler::new(0x1_0000);
        let buf = asm.zero_block(4096);
        asm.li32(Reg::A1, buf as u32);
        asm.lda_imm(Reg::A0, iters);
        asm.clr(Reg::V0);
        let top = asm.here("top");
        asm.addq(Reg::V0, Reg::A0, Reg::V0);
        asm.and_imm(Reg::A0, 0x3f, Reg::new(3));
        asm.s8addq(Reg::new(3), Reg::A1, Reg::new(3));
        asm.stq(Reg::V0, 0, Reg::new(3));
        asm.ldq(Reg::new(4), 0, Reg::new(3));
        asm.addq(Reg::V0, Reg::new(4), Reg::V0);
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        asm.finish().unwrap()
    }

    fn final_state_matches(form: IsaForm, chain: ChainPolicy) {
        let program = loop_program(500);
        // Reference: pure interpretation.
        let (mut rcpu, mut rmem) = program.load();
        run_to_halt(
            &mut rcpu,
            &mut rmem,
            &program,
            AlignPolicy::Enforce,
            100_000,
        )
        .unwrap();

        let config = VmConfig {
            translator: Translator {
                form,
                chain,
                acc_count: 4,
                fuse_memory: false,
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(config, &program);
        let exit = vm.run(100_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted);
        assert!(
            vm.stats().fragments > 0,
            "hot loop must have been translated ({form:?}, {chain:?})"
        );
        assert!(
            vm.stats().engine.v_insts > 1_000,
            "most iterations must run translated ({form:?}, {chain:?}): {}",
            vm.stats().engine.v_insts
        );
        assert_eq!(
            vm.cpu().registers(),
            rcpu.registers(),
            "translated execution must preserve architected state \
             ({form:?}, {chain:?})"
        );
    }

    #[test]
    fn modified_form_preserves_architecture() {
        final_state_matches(IsaForm::Modified, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn basic_form_preserves_architecture() {
        final_state_matches(IsaForm::Basic, ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn no_pred_chaining_preserves_architecture() {
        final_state_matches(IsaForm::Modified, ChainPolicy::NoPred);
    }

    #[test]
    fn sw_pred_chaining_preserves_architecture() {
        final_state_matches(IsaForm::Basic, ChainPolicy::SwPred);
    }

    #[test]
    fn basic_executes_more_instructions_than_modified() {
        let program = loop_program(2000);
        let run = |form| {
            let config = VmConfig {
                translator: Translator {
                    form,
                    ..Translator::default()
                },
                ..VmConfig::default()
            };
            let mut vm = Vm::new(config, &program);
            vm.run(1_000_000, &mut NullSink);
            vm.stats().clone()
        };
        let basic = run(IsaForm::Basic);
        let modified = run(IsaForm::Modified);
        assert!(
            basic.dynamic_expansion() > modified.dynamic_expansion(),
            "basic {} vs modified {}",
            basic.dynamic_expansion(),
            modified.dynamic_expansion()
        );
        assert!(basic.copy_pct() > modified.copy_pct());
        assert!(basic.dynamic_expansion() > 1.0);
    }

    #[test]
    fn overhead_model_reports_per_inst_cost() {
        let program = loop_program(500);
        let mut vm = Vm::new(VmConfig::default(), &program);
        vm.run(100_000, &mut NullSink);
        let per = vm.stats().overhead_per_translated_inst();
        assert!(
            (500.0..2500.0).contains(&per),
            "per-instruction DBT cost {per} out of plausible range"
        );
    }

    #[test]
    fn trace_original_halts_and_counts() {
        let program = loop_program(100);
        let (exit, n) = trace_original(&program, 1_000_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted);
        assert!(n > 800);
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let program = loop_program(500);
        // Uninterrupted run.
        let mut vm1 = Vm::new(VmConfig::default(), &program);
        assert_eq!(vm1.run(100_000, &mut NullSink), VmExit::Halted);
        // Interrupted at a mid-run boundary, snapshotted, restored cold.
        let mut vm2 = Vm::new(VmConfig::default(), &program);
        let mid = vm1.v_instructions() / 2;
        assert_eq!(vm2.run(mid, &mut NullSink), VmExit::Budget);
        let snap = vm2.snapshot();
        assert!(!snap.translated.is_empty(), "hot loop must be captured");
        let mut vm3 = Vm::restore(VmConfig::default(), &program, &snap).unwrap();
        assert_eq!(vm3.v_instructions(), snap.v_insts);
        assert_eq!(vm3.run(100_000, &mut NullSink), VmExit::Halted);
        assert_eq!(vm3.cpu().registers(), vm1.cpu().registers());
        assert_eq!(vm3.memory().content_digest(), vm1.memory().content_digest());
        assert_eq!(vm3.v_instructions(), vm1.v_instructions());
        // Stats continue cumulatively: the resumed run retranslates the
        // loop, so fragment counts only grow past the snapshot's.
        assert!(vm3.stats().fragments > snap.stats.fragments);
        assert!(vm3.stats().translated_code_bytes > snap.stats.translated_code_bytes);
        // Restoring onto a different program is refused.
        let other = loop_program(501);
        assert!(matches!(
            Vm::restore(VmConfig::default(), &other, &snap),
            Err(SnapshotError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn budget_exhaustion() {
        let program = loop_program(10_000);
        let mut vm = Vm::new(VmConfig::default(), &program);
        let exit = vm.run(5_000, &mut NullSink);
        assert_eq!(exit, VmExit::Budget);
    }

    fn sync_config() -> VmConfig {
        VmConfig {
            async_translate: false,
            ..VmConfig::default()
        }
    }

    #[test]
    fn async_pipeline_matches_sync_architecturally() {
        let program = loop_program(800);
        let mut sync_vm = Vm::new(sync_config(), &program);
        assert_eq!(sync_vm.run(100_000, &mut NullSink), VmExit::Halted);
        let mut async_vm = Vm::new(VmConfig::default(), &program);
        assert_eq!(async_vm.run(100_000, &mut NullSink), VmExit::Halted);
        assert_eq!(async_vm.cpu().registers(), sync_vm.cpu().registers());
        assert_eq!(
            async_vm.memory().content_digest(),
            sync_vm.memory().content_digest()
        );
        assert_eq!(async_vm.output(), sync_vm.output());
        assert_eq!(async_vm.v_instructions(), sync_vm.v_instructions());
        assert!(
            async_vm.stats().fragments > 0,
            "the hot loop must still get translated in the background"
        );
        assert_eq!(
            async_vm.stats().async_installs,
            async_vm.stats().fragments,
            "every async fragment installs through the safe-point path"
        );
    }

    #[test]
    fn delayed_install_parks_translations_until_anchor() {
        let program = loop_program(800);
        let config = VmConfig {
            install_delay: Some(200),
            ..sync_config()
        };
        let mut vm = Vm::new(config, &program);
        assert_eq!(vm.run(100_000, &mut NullSink), VmExit::Halted);
        let mut reference = Vm::new(sync_config(), &program);
        assert_eq!(reference.run(100_000, &mut NullSink), VmExit::Halted);
        assert_eq!(vm.cpu().registers(), reference.cpu().registers());
        assert_eq!(vm.v_instructions(), reference.v_instructions());
        assert!(vm.stats().fragments > 0, "delayed installs must land");
        assert_eq!(vm.stats().async_installs, vm.stats().fragments);
        // Every install was recorded as a count-anchored event.
        assert_eq!(
            vm.bg_events()
                .iter()
                .filter(|e| matches!(e, ReplayEvent::BgInstall { .. }))
                .count() as u64,
            vm.stats().async_installs
        );
    }

    #[test]
    fn warm_start_reuses_published_fragments() {
        let program = loop_program(800);
        let store = Arc::new(FragmentStore::new());
        let mut cold = Vm::new(sync_config(), &program);
        cold.attach_store(Arc::clone(&store));
        assert_eq!(cold.run(100_000, &mut NullSink), VmExit::Halted);
        assert!(cold.stats().warm_stores > 0, "cold VM must publish");
        assert_eq!(cold.stats().warm_hits, 0);

        let mut warm = Vm::new(sync_config(), &program);
        warm.attach_store(Arc::clone(&store));
        assert_eq!(warm.run(100_000, &mut NullSink), VmExit::Halted);
        assert_eq!(warm.cpu().registers(), cold.cpu().registers());
        assert_eq!(warm.v_instructions(), cold.v_instructions());
        assert!(warm.stats().fragments > 0);
        assert_eq!(
            warm.stats().warm_hits,
            warm.stats().fragments,
            "every warm fragment must come from the store"
        );
        assert_eq!(warm.stats().warm_misses, 0);
        assert_eq!(
            warm.stats().translation_overhead,
            0,
            "warm start must not pay translation overhead"
        );
    }

    #[test]
    fn recorded_async_run_replays_bit_identically() {
        let program = loop_program(800);
        let mut recorded = Vm::new(VmConfig::default(), &program);
        assert_eq!(recorded.run(100_000, &mut NullSink), VmExit::Halted);
        let events = recorded.take_bg_events();

        let mut replayed = Vm::new(sync_config(), &program);
        replayed.set_install_schedule(&events);
        assert_eq!(replayed.run(100_000, &mut NullSink), VmExit::Halted);
        assert_eq!(replayed.cpu().registers(), recorded.cpu().registers());
        assert_eq!(replayed.v_instructions(), recorded.v_instructions());
        // The replay reproduces the recorded decisions exactly.
        assert_eq!(replayed.bg_events(), events.as_slice());
        let mut a = recorded.stats().clone();
        let mut b = replayed.stats().clone();
        for s in [&mut a, &mut b] {
            s.verify_nanos = 0;
            s.translate_stall_nanos = 0;
            s.translate_wall_nanos = 0;
        }
        assert_eq!(a, b, "stats must be bit-identical modulo wall clocks");
    }
}
