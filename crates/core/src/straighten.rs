//! The code-straightening-only DBT (paper §4.1, third simulator).
//!
//! Converts an Alpha binary to a *code-straightened version of Alpha* and
//! runs it on the conventional superscalar model. This isolates the
//! effects of code straightening and fragment chaining from the
//! accumulator-ISA effects: same superblock formation, same chaining
//! policies (`no_pred`, `sw_pred.no_ras`, `sw_pred.ras`), but the
//! instructions stay Alpha — memory operations keep their displacement
//! addressing and there are no accumulators or state copies.
//!
//! Figures 4 (mispredictions per 1,000 instructions), 5 (relative
//! instruction count) and 6 (straightening/RAS IPC) are measured on this
//! system.

use crate::fragment::{DISPATCH_COST_INSTS, DISPATCH_IADDR};
use crate::profile::{interp_step, Candidates, InterpEvent, ProfileConfig};
use crate::superblock::{CollectedFlow, SbEnd, Superblock};
use crate::translate::ChainPolicy;
use crate::vm::VmExit;
use alpha_isa::{step, BranchOp, Control, CpuState, Inst, JumpKind, Memory, Program, Reg};
use ildp_uarch::{DynInst, InstClass};
use std::collections::HashMap;

/// Scratch register names used by the chaining code in trace records
/// (outside the architected 0..32 space).
const SCRATCH_EMBED: u8 = 100;
const SCRATCH_CMP: u8 = 101;

/// One slot of a straightened fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SInst {
    /// An ordinary (non-control) Alpha instruction, executed natively.
    Alpha(Inst),
    /// Conditional fragment exit; patched to a direct branch when the
    /// target is translated (`resolved`).
    ExitIf {
        op: BranchOp,
        ra: Reg,
        vtarget: u64,
        resolved: Option<u64>,
    },
    /// Unconditional fragment exit (patchable).
    Exit {
        vtarget: u64,
        resolved: Option<u64>,
    },
    /// Writes the V-ISA return address (replaces a linking `BR`/`BSR`).
    SaveVReturn {
        dst: Reg,
        vaddr: u64,
    },
    /// Pushes a (V, I) pair onto the dual-address RAS.
    PushDualRas {
        vret: u64,
        iret: Option<u64>,
    },
    /// Dual-RAS-checked return through `rb`; falls through on mismatch.
    Return {
        rb: Reg,
    },
    /// Software jump prediction (paper: 3 instructions).
    LoadEmbedded {
        vaddr: u64,
    },
    CmpEmbedded {
        rb: Reg,
    },
    BranchIfMatch {
        vtarget: u64,
        resolved: Option<u64>,
    },
    /// Transfer to the shared dispatch code, target register `rb`.
    Dispatch {
        rb: Reg,
    },
}

#[derive(Clone, Copy, Debug)]
struct SMeta {
    vcount: u16,
    is_chain: bool,
}

#[derive(Clone, Debug)]
struct SFragment {
    #[allow(dead_code)] // kept for debugging dumps
    vstart: u64,
    istart: u64,
    insts: Vec<SInst>,
    meta: Vec<SMeta>,
    entries: u64,
}

/// Statistics of a straightened-code run.
#[derive(Clone, Copy, Debug, Default)]
pub struct StraightenStats {
    /// Instructions interpreted (cold code).
    pub interpreted: u64,
    /// Instructions executed in straightened fragments (incl. chaining).
    pub executed: u64,
    /// Chaining-overhead instructions executed.
    pub chain_executed: u64,
    /// V-ISA instructions retired by straightened code.
    pub v_insts: u64,
    /// Fragments formed.
    pub fragments: u64,
    /// Dual-RAS architectural hits/misses.
    pub ras_hits: u64,
    /// Dual-RAS architectural misses.
    pub ras_misses: u64,
    /// Dispatch executions.
    pub dispatches: u64,
}

impl StraightenStats {
    /// Executed instructions per retired V-ISA instruction — the paper's
    /// Figure 5 metric.
    pub fn relative_instruction_count(&self) -> f64 {
        if self.v_insts == 0 {
            0.0
        } else {
            self.executed as f64 / self.v_insts as f64
        }
    }
}

/// The code-straightening-only virtual machine.
///
/// # Examples
///
/// ```
/// use alpha_isa::{Assembler, Reg};
/// use ildp_core::{ChainPolicy, NullSink, ProfileConfig, StraightenedVm, VmExit};
///
/// let mut asm = Assembler::new(0x1_0000);
/// asm.lda_imm(Reg::A0, 500);
/// let top = asm.here("top");
/// asm.subq_imm(Reg::A0, 1, Reg::A0);
/// asm.bne(Reg::A0, top);
/// asm.halt();
/// let program = asm.finish()?;
///
/// let mut vm = StraightenedVm::new(
///     ChainPolicy::SwPredDualRas,
///     ProfileConfig::default(),
///     &program,
/// );
/// let exit = vm.run(100_000, &mut NullSink);
/// assert_eq!(exit, VmExit::Halted);
/// assert!(vm.stats().fragments > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StraightenedVm<'p> {
    chain: ChainPolicy,
    profile: ProfileConfig,
    program: &'p Program,
    /// Predecoded code segment driving the interpreter's fetches.
    decoded: alpha_isa::DecodeCache,
    cpu: CpuState,
    mem: Memory,
    candidates: Candidates,
    fragments: Vec<SFragment>,
    by_vstart: HashMap<u64, usize>,
    by_istart: HashMap<u64, usize>,
    pending: HashMap<u64, Vec<(usize, usize)>>,
    next_iaddr: u64,
    ras: Vec<(u64, u64)>,
    ras_top: usize,
    ras_live: usize,
    /// Runtime state of the software-prediction compare (scratch regs).
    embed: u64,
    cmp: u64,
    /// Console bytes in emission order.
    pub output: Vec<u8>,
    stats: StraightenStats,
}

impl<'p> StraightenedVm<'p> {
    /// Creates the VM with the program loaded.
    pub fn new(
        chain: ChainPolicy,
        profile: ProfileConfig,
        program: &'p Program,
    ) -> StraightenedVm<'p> {
        let (cpu, mem) = program.load();
        StraightenedVm {
            chain,
            profile,
            decoded: alpha_isa::DecodeCache::new(program),
            program,
            cpu,
            mem,
            candidates: Candidates::new(),
            fragments: Vec::new(),
            by_vstart: HashMap::new(),
            by_istart: HashMap::new(),
            pending: HashMap::new(),
            next_iaddr: crate::fragment::CODE_CACHE_BASE,
            ras: vec![(0, 0); 8],
            ras_top: 0,
            ras_live: 0,
            embed: 0,
            cmp: 0,
            output: Vec::new(),
            stats: StraightenStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StraightenStats {
        &self.stats
    }

    /// The architected CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    fn ras_push(&mut self, v: u64, i: u64) {
        self.ras_top = (self.ras_top + 1) % self.ras.len();
        self.ras[self.ras_top] = (v, i);
        self.ras_live = (self.ras_live + 1).min(self.ras.len());
    }

    fn ras_pop(&mut self) -> Option<(u64, u64)> {
        if self.ras_live == 0 {
            return None;
        }
        let pair = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
        self.ras_live -= 1;
        Some(pair)
    }

    // ---- translation ----

    fn straighten(&self, sb: &Superblock) -> (Vec<SInst>, Vec<SMeta>) {
        let mut insts = Vec::with_capacity(sb.insts.len() + 8);
        let mut meta: Vec<SMeta> = Vec::new();
        let mut credited = 0u32;
        let push = |insts: &mut Vec<SInst>, meta: &mut Vec<SMeta>, i: SInst, m: SMeta| {
            insts.push(i);
            meta.push(m);
        };
        for (k, si) in sb.insts.iter().enumerate() {
            let credit = |credited: &mut u32| -> u16 {
                let through = k as u32 + 1;
                let c = through.saturating_sub(*credited);
                *credited = through;
                c as u16
            };
            let is_last = k == sb.insts.len() - 1;
            match si.flow {
                CollectedFlow::Sequential => {
                    let c = credit(&mut credited);
                    push(
                        &mut insts,
                        &mut meta,
                        SInst::Alpha(si.inst),
                        SMeta {
                            vcount: c,
                            is_chain: false,
                        },
                    );
                }
                CollectedFlow::Direct { links, .. } => {
                    if links {
                        let Inst::Branch { ra, .. } = si.inst else {
                            unreachable!("linking direct flow from a branch")
                        };
                        let c = credit(&mut credited);
                        push(
                            &mut insts,
                            &mut meta,
                            SInst::SaveVReturn {
                                dst: ra,
                                vaddr: si.vaddr + 4,
                            },
                            SMeta {
                                vcount: c,
                                is_chain: false,
                            },
                        );
                        if self.chain.uses_dual_ras() {
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::PushDualRas {
                                    vret: si.vaddr + 4,
                                    iret: None,
                                },
                                SMeta {
                                    vcount: 0,
                                    is_chain: true,
                                },
                            );
                        }
                    }
                    // Non-linking direct branches are removed outright.
                }
                CollectedFlow::CondNotTaken { taken_target } => {
                    let Inst::Branch { op, ra, .. } = si.inst else {
                        unreachable!("conditional flow from a branch")
                    };
                    let c = credit(&mut credited);
                    push(
                        &mut insts,
                        &mut meta,
                        SInst::ExitIf {
                            op,
                            ra,
                            vtarget: taken_target,
                            resolved: None,
                        },
                        SMeta {
                            vcount: c,
                            is_chain: false,
                        },
                    );
                }
                CollectedFlow::CondTaken {
                    taken_target,
                    fallthrough,
                } => {
                    let Inst::Branch { op, ra, .. } = si.inst else {
                        unreachable!("conditional flow from a branch")
                    };
                    let c = credit(&mut credited);
                    if is_last && matches!(sb.end, SbEnd::BackwardTakenBranch { .. }) {
                        push(
                            &mut insts,
                            &mut meta,
                            SInst::ExitIf {
                                op,
                                ra,
                                vtarget: taken_target,
                                resolved: None,
                            },
                            SMeta {
                                vcount: c,
                                is_chain: false,
                            },
                        );
                        push(
                            &mut insts,
                            &mut meta,
                            SInst::Exit {
                                vtarget: fallthrough,
                                resolved: None,
                            },
                            SMeta {
                                vcount: 0,
                                is_chain: true,
                            },
                        );
                    } else {
                        push(
                            &mut insts,
                            &mut meta,
                            SInst::ExitIf {
                                op: op.inverse(),
                                ra,
                                vtarget: fallthrough,
                                resolved: None,
                            },
                            SMeta {
                                vcount: c,
                                is_chain: false,
                            },
                        );
                    }
                }
                CollectedFlow::Indirect { kind, target } => {
                    let Inst::Jump { ra, rb, .. } = si.inst else {
                        unreachable!("indirect flow from a jump")
                    };
                    assert!(
                        ra.is_zero() || ra != rb,
                        "straightened chaining does not support a linking \
                         jump through its own link register"
                    );
                    if !ra.is_zero() {
                        push(
                            &mut insts,
                            &mut meta,
                            SInst::SaveVReturn {
                                dst: ra,
                                vaddr: si.vaddr + 4,
                            },
                            SMeta {
                                vcount: 0,
                                is_chain: false,
                            },
                        );
                        if self.chain.uses_dual_ras() {
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::PushDualRas {
                                    vret: si.vaddr + 4,
                                    iret: None,
                                },
                                SMeta {
                                    vcount: 0,
                                    is_chain: true,
                                },
                            );
                        }
                    }
                    let c = credit(&mut credited);
                    match (kind, self.chain) {
                        (JumpKind::Ret, ChainPolicy::SwPredDualRas) => {
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::Return { rb },
                                SMeta {
                                    vcount: c,
                                    is_chain: false,
                                },
                            );
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::Dispatch { rb },
                                SMeta {
                                    vcount: 0,
                                    is_chain: true,
                                },
                            );
                        }
                        (_, ChainPolicy::NoPred) => {
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::Dispatch { rb },
                                SMeta {
                                    vcount: c,
                                    is_chain: false,
                                },
                            );
                        }
                        _ => {
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::LoadEmbedded { vaddr: target },
                                SMeta {
                                    vcount: c,
                                    is_chain: true,
                                },
                            );
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::CmpEmbedded { rb },
                                SMeta {
                                    vcount: 0,
                                    is_chain: true,
                                },
                            );
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::BranchIfMatch {
                                    vtarget: target,
                                    resolved: None,
                                },
                                SMeta {
                                    vcount: 0,
                                    is_chain: true,
                                },
                            );
                            push(
                                &mut insts,
                                &mut meta,
                                SInst::Dispatch { rb },
                                SMeta {
                                    vcount: 0,
                                    is_chain: true,
                                },
                            );
                        }
                    }
                }
            }
        }
        match sb.end {
            SbEnd::Cycle { next } | SbEnd::MaxSize { next } => {
                insts.push(SInst::Exit {
                    vtarget: next,
                    resolved: None,
                });
                meta.push(SMeta {
                    vcount: 0,
                    is_chain: true,
                });
            }
            _ => {}
        }
        (insts, meta)
    }

    fn install(&mut self, sb: &Superblock) {
        let (insts, meta) = self.straighten(sb);
        let idx = self.fragments.len();
        let istart = self.next_iaddr;
        self.next_iaddr += (insts.len() as u64) * 4 + 16;
        self.fragments.push(SFragment {
            vstart: sb.start,
            istart,
            insts,
            meta,
            entries: 0,
        });
        self.by_vstart.insert(sb.start, idx);
        self.by_istart.insert(istart, idx);
        self.stats.fragments += 1;
        // Resolve this fragment's exits, then patch earlier fragments.
        for i in 0..self.fragments[idx].insts.len() {
            let vt = match self.fragments[idx].insts[i] {
                SInst::ExitIf {
                    vtarget,
                    resolved: None,
                    ..
                }
                | SInst::Exit {
                    vtarget,
                    resolved: None,
                }
                | SInst::BranchIfMatch {
                    vtarget,
                    resolved: None,
                } => Some(vtarget),
                SInst::PushDualRas { vret, iret: None } => Some(vret),
                _ => None,
            };
            if let Some(vt) = vt {
                match self.by_vstart.get(&vt).copied() {
                    Some(t) => {
                        let ti = self.fragments[t].istart;
                        patch_slot(&mut self.fragments[idx].insts[i], ti);
                    }
                    None => self.pending.entry(vt).or_default().push((idx, i)),
                }
            }
        }
        if let Some(sites) = self.pending.remove(&sb.start) {
            for (f, i) in sites {
                patch_slot(&mut self.fragments[f].insts[i], istart);
            }
        }
    }

    // ---- execution ----

    fn run_dispatch<S: crate::engine::TraceSink>(
        &mut self,
        vtarget: u64,
        sink: &mut S,
    ) -> Option<usize> {
        self.stats.dispatches += 1;
        let target = self.by_vstart.get(&vtarget).copied();
        let ti = target.map(|t| self.fragments[t].istart);
        let hash = vtarget.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        let probe = 0xE000_0000u64 + (hash & 0xfff) * 16;
        let n = DISPATCH_COST_INSTS;
        for k in 0..n {
            let pc = DISPATCH_IADDR + (k as u64) * 4;
            let mut d = DynInst::alu(pc, 4);
            d.vcount = 0;
            let scratch = 200 + (k % 4) as u8;
            d.dst = Some(scratch);
            if k > 0 {
                d.srcs[0] = Some(200 + ((k - 1) % 4) as u8);
            }
            if k == 2 || k == 3 {
                d.class = InstClass::Load;
                d.mem_addr = Some(probe + (k as u64 - 2) * 8);
            }
            if k == n - 1 {
                d.class = InstClass::IndirectJump;
                d.dst = None;
                d.next_pc = ti.unwrap_or(DISPATCH_IADDR);
                d.taken = true;
            }
            self.stats.executed += 1;
            self.stats.chain_executed += 1;
            sink.retire(&d);
        }
        target
    }

    /// Executes straightened fragments from `entry` until an exit.
    fn execute<S: crate::engine::TraceSink>(
        &mut self,
        entry: usize,
        sink: &mut S,
        budget: u64,
    ) -> ExecExit {
        let mut fi = entry;
        let mut idx = 0usize;
        self.fragments[fi].entries += 1;
        loop {
            if self.stats.v_insts + self.stats.interpreted >= budget {
                return ExecExit::Budget;
            }
            debug_assert!(idx < self.fragments[fi].insts.len());
            let inst = self.fragments[fi].insts[idx];
            let m = self.fragments[fi].meta[idx];
            let pc = self.fragments[fi].istart + (idx as u64) * 4;
            let next_pc = pc + 4;
            self.stats.executed += 1;
            self.stats.v_insts += m.vcount as u64;
            if m.is_chain {
                self.stats.chain_executed += 1;
            }

            let mut d = DynInst::alu(pc, 4);
            d.next_pc = next_pc;
            d.vcount = m.vcount;

            let mut goto: Option<u64> = None;
            let mut exit: Option<ExecExit> = None;

            match inst {
                SInst::Alpha(a) => {
                    // Non-control Alpha instruction: native semantics.
                    let saved_pc = self.cpu.pc;
                    self.cpu.pc = 0x100; // PC-independent by construction
                    match step(&mut self.cpu, &mut self.mem, a, self.profile.align) {
                        Ok(out) => {
                            if let Some(b) = out.output {
                                self.output.push(b);
                            }
                            d.class = match a {
                                Inst::Operate { op, .. } if op.is_multiply() => InstClass::IntMul,
                                Inst::Mem { op, .. } if op.is_load() => InstClass::Load,
                                Inst::Mem { op, .. } if op.is_store() => InstClass::Store,
                                _ => InstClass::IntAlu,
                            };
                            let mut srcs = [None; 3];
                            for (k, r) in a.sources().iter().enumerate() {
                                srcs[k] = Some(r.number());
                            }
                            d.srcs = srcs;
                            d.dst = a.dest().map(|r| r.number());
                            d.mem_addr = out.mem.map(|ma| ma.addr);
                            if out.control == Control::Halt {
                                exit = Some(ExecExit::Halted);
                            }
                        }
                        Err(trap) => {
                            self.cpu.pc = saved_pc;
                            exit = Some(ExecExit::Trapped {
                                vaddr: 0, // straightened system: address via side table
                                trap,
                            });
                        }
                    }
                    self.cpu.pc = saved_pc;
                }
                SInst::ExitIf {
                    op,
                    ra,
                    vtarget,
                    resolved,
                } => {
                    d.class = InstClass::CondBranch;
                    d.srcs[0] = Some(ra.number());
                    let taken = op.taken(self.cpu.read(ra));
                    d.taken = taken;
                    if taken {
                        match resolved {
                            Some(ti) => {
                                d.next_pc = ti;
                                goto = Some(ti);
                            }
                            None => {
                                d.next_pc = DISPATCH_IADDR;
                                exit = Some(ExecExit::NotTranslated { vtarget });
                            }
                        }
                    }
                }
                SInst::Exit { vtarget, resolved } => {
                    d.class = InstClass::Branch;
                    d.taken = true;
                    match resolved {
                        Some(ti) => {
                            d.next_pc = ti;
                            goto = Some(ti);
                        }
                        None => {
                            d.next_pc = DISPATCH_IADDR;
                            exit = Some(ExecExit::NotTranslated { vtarget });
                        }
                    }
                }
                SInst::SaveVReturn { dst, vaddr } => {
                    self.cpu.write(dst, vaddr);
                    d.dst = Some(dst.number());
                }
                SInst::PushDualRas { vret, iret } => {
                    d.class = InstClass::DualRasPush;
                    let i = iret.unwrap_or(DISPATCH_IADDR);
                    d.ras_pair = Some((vret, i));
                    self.ras_push(vret, i);
                }
                SInst::Return { rb } => {
                    d.class = InstClass::Return;
                    d.srcs[0] = Some(rb.number());
                    let actual = self.cpu.read(rb) & !3;
                    d.v_target = actual;
                    match self.ras_pop() {
                        Some((v, i)) if v == actual => {
                            self.stats.ras_hits += 1;
                            d.taken = true;
                            d.next_pc = i;
                            if i == DISPATCH_IADDR {
                                sink.retire(&d);
                                match self.run_dispatch(actual, sink) {
                                    Some(t) => {
                                        fi = t;
                                        idx = 0;
                                        self.fragments[fi].entries += 1;
                                        continue;
                                    }
                                    None => return ExecExit::NotTranslated { vtarget: actual },
                                }
                            }
                            goto = Some(i);
                        }
                        _ => {
                            self.stats.ras_misses += 1;
                            d.taken = false;
                        }
                    }
                }
                SInst::LoadEmbedded { vaddr } => {
                    self.embed = vaddr;
                    d.dst = Some(SCRATCH_EMBED);
                }
                SInst::CmpEmbedded { rb } => {
                    self.cmp = (self.embed == (self.cpu.read(rb) & !3)) as u64;
                    d.srcs = [Some(SCRATCH_EMBED), Some(rb.number()), None];
                    d.dst = Some(SCRATCH_CMP);
                }
                SInst::BranchIfMatch { vtarget, resolved } => {
                    d.class = InstClass::CondBranch;
                    d.srcs[0] = Some(SCRATCH_CMP);
                    let taken = self.cmp != 0;
                    d.taken = taken;
                    if taken {
                        match resolved {
                            Some(ti) => {
                                d.next_pc = ti;
                                goto = Some(ti);
                            }
                            None => {
                                d.next_pc = DISPATCH_IADDR;
                                exit = Some(ExecExit::NotTranslated { vtarget });
                            }
                        }
                    }
                }
                SInst::Dispatch { rb } => {
                    d.class = InstClass::Branch;
                    d.taken = true;
                    d.next_pc = DISPATCH_IADDR;
                    d.srcs[0] = Some(rb.number());
                    let v = self.cpu.read(rb) & !3;
                    sink.retire(&d);
                    match self.run_dispatch(v, sink) {
                        Some(t) => {
                            fi = t;
                            idx = 0;
                            self.fragments[fi].entries += 1;
                            continue;
                        }
                        None => return ExecExit::NotTranslated { vtarget: v },
                    }
                }
            }

            sink.retire(&d);
            if let Some(e) = exit {
                return e;
            }
            match goto {
                None => idx += 1,
                Some(a) => {
                    let t = self.by_istart[&a];
                    fi = t;
                    idx = 0;
                    self.fragments[fi].entries += 1;
                }
            }
        }
    }

    /// Runs until halt, trap, or `budget` V-ISA instructions, streaming
    /// the straightened-code trace into `sink`.
    pub fn run<S: crate::engine::TraceSink>(&mut self, budget: u64, sink: &mut S) -> VmExit {
        loop {
            if self.stats.interpreted + self.stats.v_insts >= budget {
                return VmExit::Budget;
            }
            if let Some(&fi) = self.by_vstart.get(&self.cpu.pc) {
                match self.execute(fi, sink, budget) {
                    ExecExit::NotTranslated { vtarget } => {
                        self.cpu.pc = vtarget;
                        if self.candidates.bump(vtarget, self.profile.threshold) {
                            self.translate_here();
                        }
                    }
                    ExecExit::Halted => return VmExit::Halted,
                    ExecExit::Budget => return VmExit::Budget,
                    ExecExit::Trapped { vaddr, trap } => {
                        return VmExit::Trapped {
                            vaddr,
                            trap,
                            state: Box::new(self.cpu.registers()),
                        }
                    }
                }
                continue;
            }
            match interp_step(
                &mut self.cpu,
                &mut self.mem,
                &self.decoded,
                &mut self.candidates,
                &self.profile,
                &mut self.stats.interpreted,
                &mut self.output,
                None,
            ) {
                InterpEvent::Continue => {}
                InterpEvent::Halted => return VmExit::Halted,
                InterpEvent::Hot { .. } => {
                    self.translate_here();
                }
                InterpEvent::Trapped { vaddr, trap } => {
                    return VmExit::Trapped {
                        vaddr,
                        trap,
                        state: Box::new(self.cpu.registers()),
                    }
                }
                // The straightened VM keeps no invalidatable cache, so the
                // SMC check is disabled above; unreachable.
                InterpEvent::SmcStore { .. } => {}
            }
        }
    }

    fn translate_here(&mut self) {
        if self.by_vstart.contains_key(&self.cpu.pc) {
            return;
        }
        let mut collected_output = Vec::new();
        let result = crate::profile::collect_superblock_with_output(
            &mut self.cpu,
            &mut self.mem,
            self.program,
            &self.profile,
            &mut collected_output,
        );
        self.output.append(&mut collected_output);
        if let Ok(sb) = result {
            if !sb.is_empty() {
                self.stats.interpreted += sb.len() as u64;
                self.install(&sb);
            }
        }
    }
}

fn patch_slot(slot: &mut SInst, istart: u64) {
    match slot {
        SInst::ExitIf { resolved, .. }
        | SInst::Exit { resolved, .. }
        | SInst::BranchIfMatch { resolved, .. } => *resolved = Some(istart),
        SInst::PushDualRas { iret, .. } => *iret = Some(istart),
        other => panic!("patching non-patchable slot {other:?}"),
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ExecExit {
    NotTranslated { vtarget: u64 },
    Halted,
    Budget,
    Trapped { vaddr: u64, trap: alpha_isa::Trap },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullSink;
    use alpha_isa::{run_to_halt, AlignPolicy, Assembler};

    fn call_loop_program() -> Program {
        // A loop that calls a tiny function indirectly and returns —
        // exercises chaining, RAS and dispatch.
        let mut asm = Assembler::new(0x1_0000);
        let func = asm.label("func");
        asm.lda_imm(Reg::A0, 300);
        asm.clr(Reg::V0);
        let top = asm.here("top");
        asm.bsr(func);
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        asm.bind(func);
        asm.addq(Reg::V0, Reg::A0, Reg::V0);
        asm.ret();
        asm.finish().unwrap()
    }

    fn check_policy(chain: ChainPolicy) {
        let program = call_loop_program();
        let (mut rcpu, mut rmem) = program.load();
        run_to_halt(
            &mut rcpu,
            &mut rmem,
            &program,
            AlignPolicy::Enforce,
            100_000,
        )
        .unwrap();

        let mut vm = StraightenedVm::new(chain, ProfileConfig::default(), &program);
        let exit = vm.run(100_000, &mut NullSink);
        assert_eq!(exit, VmExit::Halted, "{chain:?}");
        assert_eq!(
            vm.cpu().registers(),
            rcpu.registers(),
            "straightened execution must preserve state ({chain:?})"
        );
        assert!(vm.stats().fragments > 0);
        assert!(
            vm.stats().v_insts > 500,
            "{chain:?}: {}",
            vm.stats().v_insts
        );
    }

    #[test]
    fn no_pred_preserves_state() {
        check_policy(ChainPolicy::NoPred);
    }

    #[test]
    fn sw_pred_preserves_state() {
        check_policy(ChainPolicy::SwPred);
    }

    #[test]
    fn dual_ras_preserves_state() {
        check_policy(ChainPolicy::SwPredDualRas);
    }

    #[test]
    fn dual_ras_reduces_executed_instructions() {
        let program = call_loop_program();
        let run = |chain| {
            let mut vm = StraightenedVm::new(chain, ProfileConfig::default(), &program);
            vm.run(1_000_000, &mut NullSink);
            *vm.stats()
        };
        let no_pred = run(ChainPolicy::NoPred);
        let sw = run(ChainPolicy::SwPred);
        let ras = run(ChainPolicy::SwPredDualRas);
        // no_pred executes the 20-instruction dispatch per return; software
        // prediction avoids most; the dual RAS avoids the compare sequence
        // too (Fig. 5's ordering).
        assert!(
            no_pred.relative_instruction_count() > sw.relative_instruction_count(),
            "no_pred {} vs sw_pred {}",
            no_pred.relative_instruction_count(),
            sw.relative_instruction_count()
        );
        assert!(
            sw.relative_instruction_count() > ras.relative_instruction_count(),
            "sw_pred {} vs dual-ras {}",
            sw.relative_instruction_count(),
            ras.relative_instruction_count()
        );
        assert!(ras.ras_hits > 200, "RAS must predict the returns");
    }

    #[test]
    fn straightening_removes_unconditional_branches() {
        // A loop body split by an unconditional branch: straightened code
        // should execute fewer instructions than the original.
        let mut asm = Assembler::new(0x2_0000);
        asm.lda_imm(Reg::A0, 500);
        let top = asm.here("top");
        let over = asm.label("over");
        asm.addq_imm(Reg::V0, 1, Reg::V0);
        asm.br(over);
        // (dead gap)
        asm.addq_imm(Reg::V0, 7, Reg::V0);
        asm.bind(over);
        asm.subq_imm(Reg::A0, 1, Reg::A0);
        asm.bne(Reg::A0, top);
        asm.halt();
        let program = asm.finish().unwrap();

        let (mut rcpu, mut rmem) = program.load();
        let rstats = run_to_halt(
            &mut rcpu,
            &mut rmem,
            &program,
            AlignPolicy::Enforce,
            100_000,
        )
        .unwrap();

        let mut vm = StraightenedVm::new(
            ChainPolicy::SwPredDualRas,
            ProfileConfig::default(),
            &program,
        );
        vm.run(100_000, &mut NullSink);
        assert_eq!(vm.cpu().registers(), rcpu.registers());
        // Straightened hot code drops the BR: fewer executed instructions
        // per iteration (4 vs 5, minus cold-start noise).
        let hot_ratio = vm.stats().executed as f64 / vm.stats().v_insts as f64;
        assert!(
            hot_ratio < 1.05,
            "straightened loop should not expand: {hot_ratio} \
             (executed {} / v {})",
            vm.stats().executed,
            vm.stats().v_insts
        );
        let _ = rstats;
    }
}
