//! Loop-dominated benchmarks: `gzip`, `bzip2`, `crafty`, `gap`.

use crate::common::{regs::*, Workload, XorShift};
use alpha_isa::{Assembler, Reg};

/// The paper's Figure 2 uses `r0` as the CRC table base.
const R0: Reg = Reg::V0;

/// `164.gzip` stand-in: table-driven CRC over a byte buffer — including
/// the exact inner loop of the paper's Figure 2 — plus an LZ-style
/// match-length scan with data-dependent exits.
pub fn gzip(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x6721);
    let buf_len = 2048usize;
    let table = asm.zero_block(256 * 8);
    let buf = asm.data_block(rng.bytes(buf_len));

    // ---- CRC table init: table[i] = (i*2654435761) ^ (i << 7) ----
    asm.li32(T0, table as u32); // table cursor
    asm.clr(T1); // i
    asm.lda_imm(T4, 0x41c6); // multiplier pieces
    let init = asm.here("crc_init");
    asm.mulq(T1, T4, T2);
    asm.sll_imm(T1, 7, T3);
    asm.xor(T2, T3, T2);
    asm.stq(T2, 0, T0);
    asm.lda(T0, 8, T0);
    asm.addq_imm(T1, 1, T1);
    asm.cmplt_imm(T1, 255, T2); // 255 to keep the literal in range
    asm.bne(T2, init);

    // ---- outer repeats ----
    asm.lda_imm(S2, scale.min(1000) as i16);
    let outer = asm.here("outer");

    // ---- the Figure 2 CRC loop ----
    asm.li32(R0, table as u32); // r0 = table base (paper's R0)
    asm.li32(A0, buf as u32); // r16 = pointer
    asm.li32(A1, buf_len as u32); // r17 = count
    asm.clr(T0); // r1 = crc
    let l1 = asm.here("L1");
    asm.ldbu(T2, 0, A0); // ldbu r3, 0[r16]
    asm.subl_imm(A1, 1, A1); // subl r17, 1, r17
    asm.lda(A0, 1, A0); // lda r16, 1[r16]
    asm.xor(T0, T2, T2); // xor r1, r3, r3
    asm.srl_imm(T0, 8, T0); // srl r1, 8, r1
    asm.and_imm(T2, 0xff, T2); // and r3, 0xff, r3
    asm.s8addq(T2, R0, T2); // s8addq r3, r0, r3
    asm.ldq(T2, 0, T2); // ldq r3, 0[r3]
    asm.xor(T2, T0, T0); // xor r3, r1, r1
    asm.bne(A1, l1); // bne r17, L1
    asm.mov(T0, V0); // the crc is the running checksum (r0 doubled as table base)

    // ---- match-length scan: compare buf[i..] against buf[i+stride..],
    // unrolled by four as -O3 would ----
    asm.li32(A0, buf as u32);
    asm.li32(A1, (buf as u32) + 64); // lagged pointer
    asm.lda_imm(T5, 256);
    let match_top = asm.here("match_top");
    for k in 0..4i16 {
        asm.ldbu(T0, k, A0);
        asm.ldbu(T1, k, A1);
        asm.cmpeq(T0, T1, T2);
        asm.addq(V0, T2, V0); // count matches
    }
    asm.lda(A0, 4, A0);
    asm.lda(A1, 4, A1);
    asm.subq_imm(T5, 1, T5);
    asm.bne(T5, match_top);

    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("gzip assembles");
    Workload {
        name: "gzip",
        program,
        budget: 5_000 + (scale as u64) * 60_000,
    }
}

/// `256.bzip2` stand-in: byte histogram plus a move-to-front transform —
/// inner scan loops of data-dependent length and heavy byte stores.
pub fn bzip2(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0xb217);
    let buf_len = 1024usize;
    // Low-entropy input (repeats) so move-to-front hits near the front.
    let data: Vec<u8> = (0..buf_len)
        .map(|i| (rng.next_u64() % 24) as u8 * ((i % 3) as u8 + 1))
        .collect();
    let buf = asm.data_block(data);
    let hist = asm.zero_block(256 * 8);
    let mtf: Vec<u8> = (0..=255u8).collect();
    let mtf_tbl = asm.data_block(mtf);

    asm.lda_imm(S2, scale.min(1000) as i16);
    let outer = asm.here("outer");

    // ---- histogram ----
    asm.li32(A0, buf as u32);
    asm.lda_imm(A1, buf_len as i16);
    let h_top = asm.here("hist");
    asm.ldbu(T0, 0, A0);
    asm.li32(T1, hist as u32);
    asm.s8addq(T0, T1, T1);
    asm.ldq(T2, 0, T1);
    asm.addq_imm(T2, 1, T2);
    asm.stq(T2, 0, T1);
    asm.lda(A0, 1, A0);
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, h_top);

    // ---- move-to-front ----
    asm.li32(A0, buf as u32);
    asm.lda_imm(A1, buf_len as i16);
    let m_top = asm.here("mtf_top");
    asm.ldbu(T0, 0, A0); // symbol
    asm.li32(T1, mtf_tbl as u32); // scan cursor
    asm.clr(T3); // position
    let scan = asm.here("mtf_scan");
    // Unrolled by two: check two table slots per branch round.
    let found = asm.label("mtf_found");
    let found_second = asm.label("mtf_found_second");
    asm.ldbu(T2, 0, T1);
    asm.cmpeq(T2, T0, T4);
    asm.bne(T4, found);
    asm.ldbu(T2, 1, T1);
    asm.cmpeq(T2, T0, T4);
    asm.bne(T4, found_second);
    asm.lda(T1, 2, T1);
    asm.addq_imm(T3, 2, T3);
    asm.br(scan);
    asm.bind(found_second);
    asm.addq_imm(T3, 1, T3);
    asm.bind(found);
    asm.addq(V0, T3, V0); // emit position as checksum
                          // Shift table entries [0, pos) up by one (back to front), then put
                          // the symbol at the front.
    asm.li32(T5, mtf_tbl as u32);
    asm.addq(T5, T3, T5); // cursor at pos
    let shift = asm.here("mtf_shift");
    let shift_done = asm.label("mtf_shift_done");
    asm.beq(T3, shift_done);
    asm.ldbu(T2, -1, T5);
    asm.stb(T2, 0, T5);
    asm.lda(T5, -1, T5);
    asm.subq_imm(T3, 1, T3);
    asm.br(shift);
    asm.bind(shift_done);
    asm.li32(T5, mtf_tbl as u32);
    asm.stb(T0, 0, T5);
    asm.lda(A0, 1, A0);
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, m_top);

    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("bzip2 assembles");
    Workload {
        name: "bzip2",
        program,
        budget: 5_000 + (scale as u64) * 500_000,
    }
}

/// `186.crafty` stand-in: 64-bit bitboard manipulation — shifts, masks,
/// and Kernighan popcounts whose inner loop length is data dependent.
pub fn crafty(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0xc4af);
    let boards = asm.data_block(rng.quads(128, u64::MAX));

    asm.lda_imm(S2, scale.min(5000) as i16);
    let outer = asm.here("outer");
    asm.li32(A0, boards as u32);
    asm.lda_imm(A1, 128);
    let top = asm.here("board_top");
    asm.ldq(T0, 0, A0); // board
                        // "Attack" generation: shifted copies combined.
    asm.sll_imm(T0, 8, T1);
    asm.srl_imm(T0, 8, T2);
    asm.bis(T1, T2, T1);
    asm.sll_imm(T0, 1, T2);
    asm.bis(T1, T2, T1);
    asm.bic(T1, T0, T1); // exclude own squares
                         // Popcount (Kernighan), unrolled by two: while (x) { x &= x-1; n++ }
    asm.clr(T3);
    let pop = asm.here("pop");
    let pop_done = asm.label("pop_done");
    asm.beq(T1, pop_done);
    asm.subq_imm(T1, 1, T2);
    asm.and(T1, T2, T1);
    asm.addq_imm(T3, 1, T3);
    asm.beq(T1, pop_done);
    asm.subq_imm(T1, 1, T2);
    asm.and(T1, T2, T1);
    asm.addq_imm(T3, 1, T3);
    asm.br(pop);
    asm.bind(pop_done);
    asm.addq(V0, T3, V0);
    // Conditional best-square update with cmov.
    asm.cmplt(T3, V0, T4);
    asm.cmovne(T4, T3, T5);
    asm.addq(V0, T5, V0);
    asm.lda(A0, 8, A0);
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, top);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("crafty assembles");
    Workload {
        name: "crafty",
        program,
        budget: 5_000 + (scale as u64) * 30_000,
    }
}

/// `254.gap` stand-in: computer-algebra arithmetic — multiply-heavy
/// accumulation with `mulq`/`umulh` and a subtractive modular reduction
/// whose trip count is data dependent.
pub fn gap(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x6a9);
    let nums = asm.data_block(rng.quads(512, 1 << 20));

    asm.lda_imm(S2, scale.min(5000) as i16);
    let outer = asm.here("outer");
    asm.li32(A0, nums as u32);
    asm.lda_imm(A1, 255);
    asm.lda_imm(S0, 9973); // modulus
    let top = asm.here("top");
    // Two independent multiply chains per iteration (unrolled).
    asm.ldq(T0, 0, A0);
    asm.ldq(T1, 8, A0);
    asm.mulq(T0, T1, T2);
    asm.umulh(T0, T1, T3);
    asm.xor(T2, T3, T2);
    asm.srl_imm(T2, 48, T2);
    asm.ldq(T4, 8, A0);
    asm.ldq(T5, 16, A0);
    asm.mulq(T4, T5, T6);
    asm.umulh(T4, T5, T7);
    asm.xor(T6, T7, T6);
    asm.srl_imm(T6, 50, T6);
    asm.addq(T2, T6, T2);
    // Subtractive modular reduction (data-dependent trip count).
    let reduce = asm.here("reduce");
    let reduced = asm.label("reduced");
    asm.cmplt(T2, S0, T3);
    asm.bne(T3, reduced);
    asm.subq(T2, S0, T2);
    asm.br(reduce);
    asm.bind(reduced);
    asm.addq(V0, T2, V0);
    asm.lda(A0, 16, A0);
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, top);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("gap assembles");
    Workload {
        name: "gap",
        program,
        budget: 5_000 + (scale as u64) * 24_000,
    }
}
