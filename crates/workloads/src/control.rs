//! Control-flow-heavy benchmarks: `gcc`, `perlbmk`, `vortex`, `eon`.
//!
//! These exercise what the paper's chaining evaluation (Figures 4 and 5)
//! depends on: register-indirect jumps through jump tables, indirect
//! calls through function-pointer tables, and deep call/return chains.

use crate::common::{regs::*, Workload, XorShift};
use alpha_isa::{Assembler, Label};

/// Emits a jump-table dispatch: `jmp` through `table[t0 * 8]` (clobbers
/// `T1`).
fn jump_table_dispatch(asm: &mut Assembler, table_addr: u64) {
    asm.li32(T1, table_addr as u32);
    asm.s8addq(T0, T1, T1);
    asm.ldq(T1, 0, T1);
    asm.jmp(alpha_isa::Reg::ZERO, T1);
}

/// `176.gcc` stand-in: compiler-pass flavor — a token stream driven
/// through an 8-way jump-table switch of small, branchy basic blocks.
pub fn gcc(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x6cc);
    // Token stream: biased so some cases are hot (realistic switch bias).
    let tokens: Vec<u8> = (0..2048)
        .map(|_| {
            let r = rng.next_u64() % 16;
            match r {
                0..=5 => 0u8,
                6..=9 => 1,
                10..=11 => 2,
                12 => 3,
                13 => 4,
                14 => 5,
                _ => 6 + (rng.next_u64() % 2) as u8,
            }
        })
        .collect();
    let stream = asm.data_block(tokens);
    let table_block = asm.zero_block(8 * 8);

    let main = asm.label("main");
    asm.br(main);

    // Helpers called from the hot cases: symbol-table flavor (calls and
    // returns dominate real compiler control flow).
    let intern = asm.here("intern");
    asm.mull_imm(A0, 31, T2);
    asm.srl_imm(T2, 4, T3);
    asm.xor(T2, T3, T2);
    asm.and_imm(T2, 0xff, V0);
    asm.ret();
    let fold = asm.here("fold");
    asm.addq(A0, A0, T2);
    asm.s8addq(T2, A0, V0);
    asm.ret();

    // ---- the eight switch cases ----
    let mut cases: Vec<Label> = Vec::new();
    let next_tok = asm.label("next_tok");
    for c in 0..8u8 {
        let l = asm.here(format!("case{c}"));
        cases.push(l);
        match c {
            0 => {
                // Identifier: intern it (call + return).
                asm.sll_imm(V0, 1, A0);
                asm.xor_imm(A0, 0x21, A0);
                asm.bsr(intern);
                asm.addq(V0, S3, V0);
                asm.mov(V0, S3);
            }
            1 => {
                // Number: fold its value (call + return).
                asm.addq_imm(V0, 7, A0);
                asm.bsr(fold);
                asm.addq(S3, V0, S3);
            }
            2 => {
                // Operator: branchy precedence test.
                let low = asm.label(format!("low{c}"));
                asm.and_imm(V0, 3, T2);
                asm.cmplt_imm(T2, 2, T3);
                asm.bne(T3, low);
                asm.addq_imm(V0, 3, V0);
                asm.bind(low);
                asm.addq_imm(V0, 1, V0);
            }
            3 => {
                asm.srl_imm(V0, 1, V0);
                asm.addq_imm(V0, 11, V0);
            }
            4 => {
                asm.xor_imm(V0, 0x5a, V0);
            }
            5 => {
                asm.s8addq(V0, V0, V0);
            }
            6 => {
                asm.subq_imm(V0, 13, V0);
            }
            _ => {
                asm.addq_imm(V0, 1, V0);
            }
        }
        asm.br(next_tok);
    }

    asm.bind(main);
    asm.entry_here();
    asm.lda_imm(S2, scale.min(2000) as i16);
    asm.clr(S3);
    let outer = asm.here("outer");
    asm.li32(S0, stream as u32);
    asm.lda_imm(S1, 2047);
    let loop_top = asm.here("loop_top");
    asm.ldbu(T0, 0, S0);
    asm.lda(S0, 1, S0);
    // Per-token bookkeeping before the switch (real scanners do work
    // between dispatches).
    asm.sll_imm(S3, 1, T2);
    asm.xor(S3, T2, S3);
    asm.addq(S3, T0, S3);
    jump_table_dispatch(&mut asm, table_block);
    asm.bind(next_tok);
    asm.subq_imm(S1, 1, S1);
    asm.bne(S1, loop_top);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    // Fill the jump table with the case addresses.
    let mut table = Vec::with_capacity(64);
    for l in &cases {
        table.extend_from_slice(&asm.label_addr(*l).expect("case bound").to_le_bytes());
    }
    let program = asm
        .finish()
        .expect("gcc assembles")
        .with_data(table_block, table);
    Workload {
        name: "gcc",
        program,
        budget: 5_000 + (scale as u64) * 60_000,
    }
}

/// `253.perlbmk` stand-in: a bytecode interpreter — opcode fetch,
/// jump-table dispatch, a value stack in memory, and a subroutine opcode
/// that exercises call/return pairs.
pub fn perlbmk(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x9e21);
    // Bytecode: ops 0=push 1=add 2=dup 3=drop 4=sub 5=call 6=loop-end.
    let mut code = Vec::new();
    for _ in 0..200 {
        match rng.next_u64() % 8 {
            0 | 1 => {
                code.push(0u8); // push imm
                code.push((rng.next_u64() % 100) as u8);
            }
            2 => {
                code.push(2);
                code.push(5); // interpreters call runtime helpers often
            }
            3 => {
                // Keep the stack from draining: push then drop.
                code.push(0);
                code.push(1);
                code.push(3);
            }
            4 => {
                code.push(0);
                code.push(5);
                code.push(4);
            }
            5 => code.push(5),
            _ => {
                code.push(0);
                code.push(3);
                code.push(1);
            }
        }
    }
    code.push(6); // end
    let bytecode = asm.data_block(code);
    let stack = asm.zero_block(16 * 1024);
    let table_block = asm.zero_block(8 * 8);

    let main = asm.label("main");
    asm.br(main);

    // helper subroutine for the call opcode
    let helper = asm.here("helper");
    asm.ldq(T2, 0, S1); // top of stack
    asm.s8addq(T2, T2, T2);
    asm.xor_imm(T2, 0x1f, T2);
    asm.stq(T2, 0, S1);
    asm.ret();

    // S0 = bytecode pc, S1 = value-stack pointer (grows up).
    let dispatch = asm.label("dispatch");
    let mut cases = Vec::new();
    // 0: push imm
    {
        let l = asm.here("op_push");
        cases.push(l);
        asm.ldbu(T2, 0, S0);
        asm.lda(S0, 1, S0);
        asm.lda(S1, 8, S1);
        asm.stq(T2, 0, S1);
        asm.br(dispatch);
    }
    // 1: add
    {
        let l = asm.here("op_add");
        cases.push(l);
        asm.ldq(T2, 0, S1);
        asm.lda(S1, -8, S1);
        asm.ldq(T3, 0, S1);
        asm.addq(T2, T3, T3);
        asm.stq(T3, 0, S1);
        asm.br(dispatch);
    }
    // 2: dup
    {
        let l = asm.here("op_dup");
        cases.push(l);
        asm.ldq(T2, 0, S1);
        asm.lda(S1, 8, S1);
        asm.stq(T2, 0, S1);
        asm.br(dispatch);
    }
    // 3: drop
    {
        let l = asm.here("op_drop");
        cases.push(l);
        asm.ldq(T2, 0, S1);
        asm.addq(V0, T2, V0); // observe dropped values
        asm.lda(S1, -8, S1);
        asm.br(dispatch);
    }
    // 4: sub
    {
        let l = asm.here("op_sub");
        cases.push(l);
        asm.ldq(T2, 0, S1);
        asm.lda(S1, -8, S1);
        asm.ldq(T3, 0, S1);
        asm.subq(T3, T2, T3);
        asm.stq(T3, 0, S1);
        asm.br(dispatch);
    }
    // 5: call helper
    {
        let l = asm.here("op_call");
        cases.push(l);
        asm.bsr(helper);
        asm.br(dispatch);
    }
    // 6: end of pass
    let op_end = asm.here("op_end");
    cases.push(op_end);
    {
        asm.ldq(T2, 0, S1);
        asm.addq(V0, T2, V0);
        asm.subq_imm(S2, 1, S2);
        let done = asm.label("done");
        asm.beq(S2, done);
        // Restart the bytecode and reset the value stack (each pass is a
        // fresh evaluation, as a real interpreter's frame would be).
        asm.li32(S0, bytecode as u32);
        asm.li32(S1, stack as u32);
        asm.lda(S1, 64, S1);
        asm.br(dispatch);
        asm.bind(done);
        asm.halt();
    }
    // 7: unused (points at end)
    cases.push(op_end);

    asm.bind(main);
    asm.entry_here();
    asm.lda_imm(S2, scale.min(2000) as i16);
    asm.li32(S0, bytecode as u32);
    asm.li32(S1, stack as u32);
    asm.lda(S1, 64, S1); // headroom below the live stack slot
    asm.clr(V0);
    asm.bind(dispatch);
    asm.ldbu(T0, 0, S0);
    asm.lda(S0, 1, S0);
    asm.and_imm(T0, 7, T0); // defensive opcode mask, as interpreters do
    jump_table_dispatch(&mut asm, table_block);

    let mut table = Vec::with_capacity(64);
    for l in &cases {
        table.extend_from_slice(&asm.label_addr(*l).expect("op bound").to_le_bytes());
    }
    let program = asm
        .finish()
        .expect("perlbmk assembles")
        .with_data(table_block, table);
    Workload {
        name: "perlbmk",
        program,
        budget: 10_000 + (scale as u64) * 30_000,
    }
}

/// `255.vortex` stand-in: object-database flavor — records manipulated
/// through a method table (indirect calls), each method touching several
/// fields, with a nested helper call.
pub fn vortex(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x0b7e);
    // Records: four u64 fields each.
    let records = asm.data_block(rng.quads(256 * 4, 1 << 24));
    let mtable_block = asm.zero_block(4 * 8);

    let main = asm.label("main");
    asm.br(main);

    // Shared helper: field mix.
    let mix = asm.here("mix");
    asm.mulq(A1, A1, T4);
    asm.srl_imm(T4, 7, T4);
    asm.xor(T4, A1, A1);
    asm.ret();

    // Methods: a0 = record pointer. Each ends in RET (return targets vary
    // per call site — the RAS stress the paper cares about).
    let mut methods = Vec::new();
    {
        let m = asm.here("m_get");
        methods.push(m);
        asm.ldq(T3, 0, A0);
        asm.addq(V0, T3, V0);
        asm.ret();
    }
    {
        let m = asm.here("m_sum");
        methods.push(m);
        asm.ldq(T3, 0, A0);
        asm.ldq(T4, 8, A0);
        asm.addq(T3, T4, T3);
        asm.ldq(T4, 16, A0);
        asm.addq(T3, T4, T3);
        asm.stq(T3, 24, A0);
        asm.addq(V0, T3, V0);
        asm.ret();
    }
    {
        let m = asm.here("m_mix");
        methods.push(m);
        // Nested call: save ra in s3 (leaf-save convention).
        asm.mov(RA, S3);
        asm.ldq(A1, 8, A0);
        asm.bsr(mix);
        asm.stq(A1, 8, A0);
        asm.addq(V0, A1, V0);
        asm.mov(S3, RA);
        asm.ret();
    }
    {
        let m = asm.here("m_touch");
        methods.push(m);
        asm.ldq(T3, 24, A0);
        asm.addq_imm(T3, 1, T3);
        asm.stq(T3, 24, A0);
        asm.ret();
    }

    asm.bind(main);
    asm.entry_here();
    asm.lda_imm(S2, scale.min(2000) as i16);
    let outer = asm.here("outer");
    asm.li32(S0, records as u32);
    asm.lda_imm(S1, 256);
    let top = asm.here("top");
    // Method index from the record's first field (data-dependent target).
    asm.ldq(T0, 0, S0);
    asm.and_imm(T0, 3, T0);
    asm.li32(T1, mtable_block as u32);
    asm.s8addq(T0, T1, T1);
    asm.ldq(PV, 0, T1);
    asm.mov(S0, A0);
    asm.jsr(RA, PV);
    asm.lda(S0, 32, S0);
    asm.subq_imm(S1, 1, S1);
    asm.bne(S1, top);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let mut table = Vec::with_capacity(32);
    for m in &methods {
        table.extend_from_slice(&asm.label_addr(*m).expect("method bound").to_le_bytes());
    }
    let program = asm
        .finish()
        .expect("vortex assembles")
        .with_data(mtable_block, table);
    Workload {
        name: "vortex",
        program,
        budget: 10_000 + (scale as u64) * 40_000,
    }
}

/// `252.eon` stand-in: ray-tracer flavor (C++ in the paper) — a tight
/// loop of small leaf-function calls doing fixed-point vector arithmetic.
pub fn eon(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0xe0);
    let vecs = asm.data_block(rng.quads(512 * 3, 1 << 12));

    let main = asm.label("main");
    asm.br(main);

    // dot(a0) = v[0]*w0 + v[1]*w1 + v[2]*w2 (fixed weights).
    let dot = asm.here("dot");
    asm.ldq(T3, 0, A0);
    asm.ldq(T4, 8, A0);
    asm.ldq(T5, 16, A0);
    asm.mull_imm(T3, 3, T3);
    asm.mull_imm(T4, 5, T4);
    asm.mull_imm(T5, 7, T5);
    asm.addq(T3, T4, T3);
    asm.addq(T3, T5, V0);
    asm.ret();

    // norm-ish(a0): shift-scaled accumulate.
    let norm = asm.here("norm");
    asm.ldq(T3, 0, A0);
    asm.ldq(T4, 8, A0);
    asm.mulq(T3, T3, T3);
    asm.mulq(T4, T4, T4);
    asm.addq(T3, T4, T3);
    asm.srl_imm(T3, 12, V0);
    asm.ret();

    asm.bind(main);
    asm.entry_here();
    asm.lda_imm(S2, scale.min(5000) as i16);
    let outer = asm.here("outer");
    asm.li32(S0, vecs as u32);
    asm.lda_imm(S1, 512);
    asm.clr(S3);
    let top = asm.here("top");
    // Two call sites per function, selected by record parity: returns
    // alternate between continuation points (single-site software
    // prediction cannot track this; the dual-address RAS can).
    let even = asm.label("even");
    let joined = asm.label("joined");
    asm.and_imm(S1, 1, T0);
    asm.beq(T0, even);
    asm.mov(S0, A0);
    asm.bsr(dot);
    asm.addq(S3, V0, S3);
    asm.mov(S0, A0);
    asm.bsr(norm);
    asm.addq(S3, V0, S3);
    asm.br(joined);
    asm.bind(even);
    asm.mov(S0, A0);
    asm.bsr(norm);
    asm.s8addq(V0, S3, S3);
    asm.mov(S0, A0);
    asm.bsr(dot);
    asm.addq(S3, V0, S3);
    asm.bind(joined);
    asm.lda(S0, 24, S0);
    asm.subq_imm(S1, 1, S1);
    asm.bne(S1, top);
    asm.mov(S3, V0);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("eon assembles");
    Workload {
        name: "eon",
        program,
        budget: 5_000 + (scale as u64) * 40_000,
    }
}
