//! Shared workload-construction helpers.

use alpha_isa::{Program, Reg};

/// A runnable benchmark: a loadable Alpha program plus run metadata.
///
/// The twelve members of [`crate::suite`] stand in for the SPEC CPU2000
/// integer benchmarks of the paper's evaluation (see DESIGN.md §3 for the
/// substitution argument): each reproduces the control-flow and
/// data-access character of its namesake — loop shape, indirect-jump and
/// call/return frequency, working-set behavior — at a size that runs in a
/// simulator.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The SPEC-style short name (`gzip`, `mcf`, ...).
    pub name: &'static str,
    /// The assembled program.
    pub program: Program,
    /// A V-ISA instruction budget that comfortably covers the run.
    pub budget: u64,
}

/// Deterministic xorshift64* generator used to synthesize input data.
#[derive(Clone, Copy, Debug)]
pub struct XorShift(pub u64);

impl XorShift {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A pseudo-random byte buffer of `len` bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// Little-endian quadword buffer of `n` values below `bound`.
    pub fn quads(&mut self, n: usize, bound: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(n * 8);
        for _ in 0..n {
            out.extend_from_slice(&(self.next_u64() % bound).to_le_bytes());
        }
        out
    }
}

/// Frequently used registers, named for readability in workload code.
pub mod regs {
    use super::Reg;
    /// Return value / checksum accumulator.
    pub const V0: Reg = Reg::V0;
    /// Temporaries.
    pub const T0: Reg = Reg::new(1);
    /// Temporary 1.
    pub const T1: Reg = Reg::new(2);
    /// Temporary 2.
    pub const T2: Reg = Reg::new(3);
    /// Temporary 3.
    pub const T3: Reg = Reg::new(4);
    /// Temporary 4.
    pub const T4: Reg = Reg::new(5);
    /// Temporary 5.
    pub const T5: Reg = Reg::new(6);
    /// Temporary 6.
    pub const T6: Reg = Reg::new(7);
    /// Temporary 7.
    pub const T7: Reg = Reg::new(8);
    /// Callee-saved 0.
    pub const S0: Reg = Reg::new(9);
    /// Callee-saved 1.
    pub const S1: Reg = Reg::new(10);
    /// Callee-saved 2.
    pub const S2: Reg = Reg::new(11);
    /// Callee-saved 3.
    pub const S3: Reg = Reg::new(12);
    /// Argument 0.
    pub const A0: Reg = Reg::A0;
    /// Argument 1.
    pub const A1: Reg = Reg::A1;
    /// Argument 2.
    #[allow(dead_code)]
    pub const A2: Reg = Reg::A2;
    /// Argument 3.
    #[allow(dead_code)]
    pub const A3: Reg = Reg::new(19);
    /// Procedure value (indirect-call target).
    pub const PV: Reg = Reg::PV;
    /// Return address.
    pub const RA: Reg = Reg::RA;
}
