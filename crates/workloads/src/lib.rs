//! # spec-workloads — the synthetic SPEC CPU2000 INT suite
//!
//! Twelve deterministic Alpha programs standing in for the SPEC CPU2000
//! integer benchmarks the paper evaluates (DESIGN.md §3 documents the
//! substitution). Each reproduces the control-flow and memory character
//! of its namesake:
//!
//! | name | character |
//! |------|-----------|
//! | `gzip` | table CRC (the paper's Fig. 2 loop) + match scans |
//! | `vpr` | cost deltas, accept/reject branches, cmovs |
//! | `gcc` | 8-way jump-table switch over a biased token stream |
//! | `mcf` | cache-hostile linked-list pointer chasing |
//! | `crafty` | 64-bit bitboards, shifts, popcount loops |
//! | `parser` | byte tokenizing with per-token lookup calls |
//! | `eon` | small leaf-function call loops (C++ flavor) |
//! | `perlbmk` | bytecode interpreter with jump-table dispatch |
//! | `gap` | multiply-heavy arithmetic with subtractive reduction |
//! | `vortex` | method-table indirect calls over records |
//! | `bzip2` | histogram + move-to-front with data-dependent scans |
//! | `twolf` | RNG-driven random swaps over a placement array |
//!
//! # Examples
//!
//! ```
//! use spec_workloads::suite;
//! let workloads = suite(1);
//! assert_eq!(workloads.len(), 12);
//! assert!(workloads.iter().any(|w| w.name == "gzip"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod common;
mod control;
mod loops;
mod memory;

pub use common::{Workload, XorShift};

/// Builds the full 12-benchmark suite at the given scale (1 = test-sized;
/// the benchmark harness uses larger scales).
pub fn suite(scale: u32) -> Vec<Workload> {
    vec![
        loops::gzip(scale),
        memory::vpr(scale),
        control::gcc(scale),
        memory::mcf(scale),
        loops::crafty(scale),
        memory::parser(scale),
        control::eon(scale),
        control::perlbmk(scale),
        loops::gap(scale),
        control::vortex(scale),
        loops::bzip2(scale),
        memory::twolf(scale),
    ]
}

/// Builds one benchmark by SPEC-style name.
pub fn by_name(name: &str, scale: u32) -> Option<Workload> {
    let w = match name {
        "gzip" => loops::gzip(scale),
        "vpr" => memory::vpr(scale),
        "gcc" => control::gcc(scale),
        "mcf" => memory::mcf(scale),
        "crafty" => loops::crafty(scale),
        "parser" => memory::parser(scale),
        "eon" => control::eon(scale),
        "perlbmk" => control::perlbmk(scale),
        "gap" => loops::gap(scale),
        "vortex" => control::vortex(scale),
        "bzip2" => loops::bzip2(scale),
        "twolf" => memory::twolf(scale),
        _ => return None,
    };
    Some(w)
}

/// The names of the suite in canonical order.
pub const NAMES: [&str; 12] = [
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk", "gap", "vortex", "bzip2",
    "twolf",
];

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_isa::{run_to_halt, AlignPolicy};

    #[test]
    fn every_workload_runs_to_halt_within_budget() {
        for w in suite(1) {
            let (mut cpu, mut mem) = w.program.load();
            let stats = run_to_halt(
                &mut cpu,
                &mut mem,
                &w.program,
                AlignPolicy::Enforce,
                w.budget,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                stats.instructions > 3_000,
                "{} too small: {} instructions",
                w.name,
                stats.instructions
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for name in NAMES {
            let w1 = by_name(name, 1).unwrap();
            let w2 = by_name(name, 1).unwrap();
            let run = |w: &Workload| {
                let (mut cpu, mut mem) = w.program.load();
                run_to_halt(
                    &mut cpu,
                    &mut mem,
                    &w.program,
                    AlignPolicy::Enforce,
                    w.budget,
                )
                .unwrap();
                cpu.registers()
            };
            assert_eq!(run(&w1), run(&w2), "{name} must be deterministic");
        }
    }

    #[test]
    fn scale_increases_run_length() {
        let short = loops::gzip(1);
        let long = loops::gzip(3);
        let count = |w: &Workload| {
            let (mut cpu, mut mem) = w.program.load();
            run_to_halt(
                &mut cpu,
                &mut mem,
                &w.program,
                AlignPolicy::Enforce,
                w.budget,
            )
            .unwrap()
            .instructions
        };
        assert!(count(&long) > count(&short) * 2);
    }

    #[test]
    fn control_benchmarks_use_indirect_jumps() {
        for name in ["gcc", "perlbmk", "vortex", "eon", "parser"] {
            let w = by_name(name, 1).unwrap();
            let (mut cpu, mut mem) = w.program.load();
            let stats = run_to_halt(
                &mut cpu,
                &mut mem,
                &w.program,
                AlignPolicy::Enforce,
                w.budget,
            )
            .unwrap();
            assert!(
                stats.indirect_jumps > 100,
                "{name}: only {} indirect jumps",
                stats.indirect_jumps
            );
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("spice", 1).is_none());
    }

    #[test]
    fn names_match_suite_order() {
        let s = suite(1);
        for (w, n) in s.iter().zip(NAMES) {
            assert_eq!(w.name, n);
        }
    }
}
