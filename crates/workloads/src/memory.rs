//! Memory-behavior benchmarks: `mcf`, `twolf`, `vpr`, `parser`.

use crate::common::{regs::*, Workload, XorShift};
use alpha_isa::Assembler;

/// `181.mcf` stand-in: network-simplex-style pointer chasing — a linked
/// list threaded pseudo-randomly through a large node array (cache
/// hostile), with a cost comparison on every node.
pub fn mcf(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x3cf);
    // Node: [next: u64][cost: u64]; a random permutation cycle over all
    // nodes so the chase touches every line in pseudo-random order.
    let node_count = 4096usize;
    let mut order: Vec<usize> = (0..node_count).collect();
    // Fisher-Yates with the deterministic generator.
    for i in (1..node_count).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        order.swap(i, j);
    }
    let mut nodes = vec![0u8; node_count * 16];
    // Reserve the block first so its base address is known, then supply
    // the initialized bytes as a second data segment over the same range.
    let nodes_base = asm.zero_block(node_count * 16);
    for k in 0..node_count {
        let from = order[k];
        let to = order[(k + 1) % node_count];
        let next_addr = nodes_base + (to as u64) * 16;
        nodes[from * 16..from * 16 + 8].copy_from_slice(&next_addr.to_le_bytes());
        let cost = rng.next_u64() % 1000;
        nodes[from * 16 + 8..from * 16 + 16].copy_from_slice(&cost.to_le_bytes());
    }
    // Re-add as an initialized block at the same address via Program data:
    // zero_block reserved the range; emit the real bytes over it.
    let init_block = nodes;

    asm.lda_imm(S2, scale.min(2000) as i16);
    let outer = asm.here("outer");
    asm.li32(A0, nodes_base as u32); // current node
    asm.lda_imm(A1, 1023);
    asm.clr(S0); // best cost
    let chase = asm.here("chase");
    // Four chase steps per branch (unrolled pointer walk).
    for _ in 0..4 {
        asm.ldq(T1, 8, A0); // cost
        asm.ldq(A0, 0, A0); // next (pointer chase)
        asm.addq(V0, T1, V0);
        asm.cmplt(T1, S0, T2);
        asm.cmovne(T2, T1, S0); // best via conditional move
        asm.addq(V0, T2, V0);
    }
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, chase);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm
        .finish()
        .expect("mcf assembles")
        .with_data(nodes_base, init_block);
    Workload {
        name: "mcf",
        program,
        budget: 5_000 + (scale as u64) * 70_000,
    }
}

/// `300.twolf` stand-in: simulated-annealing-style random swaps — an
/// in-assembly xorshift generator drives loads, compares and conditional
/// stores over a placement array.
pub fn twolf(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x2f01);
    let cells = asm.data_block(rng.quads(1024, 1 << 16));

    asm.lda_imm(S2, scale.min(5000) as i16);
    asm.lda_imm(S0, 0x7301); // rng state
    let outer = asm.here("outer");
    asm.lda_imm(A1, 400); // swaps per pass
    let top = asm.here("top");
    // xorshift: s ^= s << 13; s ^= s >> 7; s ^= s << 17
    asm.sll_imm(S0, 13, T0);
    asm.xor(S0, T0, S0);
    asm.srl_imm(S0, 7, T0);
    asm.xor(S0, T0, S0);
    asm.sll_imm(S0, 17, T0);
    asm.xor(S0, T0, S0);
    // Pick two slots i, j from the state.
    asm.and_imm(S0, 255, T1); // wait: need 10 bits; combine two bytes
    asm.srl_imm(S0, 8, T2);
    asm.and_imm(T2, 255, T2);
    asm.sll_imm(T1, 2, T1); // i in 0..1024 (256*4)
    asm.sll_imm(T2, 2, T2);
    asm.li32(T3, cells as u32);
    asm.s8addq(T1, T3, T4); // &cells[i]
    asm.s8addq(T2, T3, T5); // &cells[j]
    asm.ldq(T6, 0, T4);
    asm.ldq(T7, 0, T5);
    // Swap if it "improves" (t6 > t7).
    let noswap = asm.label("noswap");
    asm.cmple(T6, T7, T0);
    asm.bne(T0, noswap);
    asm.stq(T7, 0, T4);
    asm.stq(T6, 0, T5);
    asm.addq_imm(V0, 1, V0); // count accepted swaps
    asm.bind(noswap);
    asm.addq(V0, T7, V0);
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, top);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("twolf assembles");
    Workload {
        name: "twolf",
        program,
        budget: 5_000 + (scale as u64) * 36_000,
    }
}

/// `175.vpr` stand-in: place-and-route cost evaluation — wire-length
/// deltas over a grid with accept/reject branches and conditional moves.
pub fn vpr(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0xa17);
    let grid = asm.data_block(rng.quads(2048, 64));

    asm.lda_imm(S2, scale.min(5000) as i16);
    let outer = asm.here("outer");
    asm.li32(A0, grid as u32);
    asm.lda_imm(A1, 500);
    asm.clr(S0); // total cost
    let top = asm.here("top");
    // Two cost evaluations per iteration (unrolled).
    asm.ldq(T0, 0, A0);
    asm.ldq(T1, 8, A0);
    asm.ldq(T2, 16, A0);
    asm.ldq(T7, 24, A0);
    // Manhattan-ish deltas via cmov abs.
    asm.subq(T0, T1, T3);
    asm.subq(T1, T0, T4);
    asm.cmovlt(T3, T4, T3); // |t0 - t1|
    asm.subq(T1, T2, T5);
    asm.subq(T2, T1, T6);
    asm.cmovlt(T5, T6, T5); // |t1 - t2|
    asm.addq(T3, T5, T3);
    asm.subq(T2, T7, T5);
    asm.subq(T7, T2, T6);
    asm.cmovlt(T5, T6, T5); // |t2 - t7|
    asm.addq(T3, T5, T3);
    // Accept if the delta is under a threshold (data-dependent branch).
    let reject = asm.label("reject");
    asm.cmplt_imm(T3, 48, T4);
    asm.beq(T4, reject);
    asm.addq(S0, T3, S0);
    asm.bind(reject);
    asm.lda(A0, 16, A0);
    asm.subq_imm(A1, 1, A1);
    asm.bne(A1, top);
    asm.addq(V0, S0, V0);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("vpr assembles");
    Workload {
        name: "vpr",
        program,
        budget: 5_000 + (scale as u64) * 40_000,
    }
}

/// `197.parser` stand-in: link-grammar-style tokenizing — byte scanning
/// with character-class tests and a per-token dictionary-lookup call.
pub fn parser(scale: u32) -> Workload {
    let mut asm = Assembler::new(0x1_0000);
    let mut rng = XorShift::new(0x9a4e);
    // Text of words over a small alphabet separated by spaces.
    let mut text = Vec::new();
    for _ in 0..256 {
        let len = 1 + (rng.next_u64() % 8) as usize;
        for _ in 0..len {
            text.push(b'a' + (rng.next_u64() % 26) as u8);
        }
        text.push(b' ');
    }
    text.push(0); // terminator
    let text_len = text.len();
    let buf = asm.data_block(text);
    let dict = asm.data_block(rng.quads(256, 1 << 30));

    // Layout: lookup function first (so its label binds before the table
    // is needed), then main.
    let lookup = asm.label("lookup");
    let main = asm.label("main");
    asm.br(main);
    asm.bind(lookup);
    // hash = a0 * 31 mod 256; return dict[hash]
    asm.mull_imm(A0, 31, T0);
    asm.and_imm(T0, 255, T0);
    asm.li32(T1, dict as u32);
    asm.s8addq(T0, T1, T0);
    asm.ldq(V0, 0, T0);
    asm.ret();

    asm.bind(main);
    asm.entry_here();
    asm.lda_imm(S2, scale.min(2000) as i16);
    let outer = asm.here("outer");
    asm.li32(S0, buf as u32); // cursor
    asm.clr(S1); // token hash accumulator
    asm.clr(S3); // checksum
    let top = asm.here("top");
    asm.ldbu(T0, 0, S0);
    asm.lda(S0, 1, S0);
    let end = asm.label("end");
    asm.beq(T0, end); // NUL: done
                      // Is it a letter? (t0 >= 'a')
    let sep = asm.label("sep");
    asm.cmplt_imm(T0, 97, T1);
    asm.bne(T1, sep);
    // Letter: fold into the token hash.
    asm.sll_imm(S1, 1, S1);
    asm.addq(S1, T0, S1);
    asm.br(top);
    asm.bind(sep);
    // Separator: look the token up, accumulate, reset. Long tokens use a
    // second call site (returns then alternate between continuations).
    let long_tok = asm.label("long_tok");
    asm.srl_imm(S1, 9, T2);
    asm.bne(T2, long_tok);
    asm.mov(S1, A0);
    asm.bsr(lookup);
    asm.addq(S3, V0, S3);
    asm.clr(S1);
    asm.br(top);
    asm.bind(long_tok);
    asm.mov(S1, A0);
    asm.bsr(lookup);
    asm.s8addq(V0, S3, S3);
    asm.clr(S1);
    asm.br(top);
    asm.bind(end);
    asm.mov(S3, V0);
    asm.subq_imm(S2, 1, S2);
    asm.bne(S2, outer);
    asm.halt();

    let program = asm.finish().expect("parser assembles");
    Workload {
        name: "parser",
        program,
        budget: 5_000 + (scale as u64) * (text_len as u64) * 14,
    }
}
